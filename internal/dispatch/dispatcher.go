// Package dispatch implements the Falkon dispatcher: the streamlined task
// dispatch service at the core of the paper. It accepts bundled task
// submissions from clients, maintains a FIFO queue per the next-available
// dispatch policy, pushes work-available notifications to idle executors,
// serves work pulls, accepts result deliveries with piggy-backed work
// requests, applies the replay policy (re-dispatch on failure or timeout),
// and exposes the state the provisioner polls.
//
// The scheduling state machine itself — queue, executor table, outstanding
// table, replay policy, pick policies — lives in internal/sched, shared
// with the virtual-time simulator. This package drives it from wall-clock
// time across N shards (Options.Shards, default GOMAXPROCS), each shard a
// sched.Core under its own mutex: tasks route to shards by a stable
// affinity hash, executors live on the shard their ID hashes to, and an
// executor whose home queue is dry steals FIFO from other shards. Handlers
// gather each core's effects (trace events, notification pushes, stage
// observations) under the shard lock and apply them after releasing it, so
// no I/O ever runs inside a scheduler critical section.
//
// In keeping with the paper's design (§1, §7), the dispatcher deliberately
// omits LRM features: there are no priorities, no multiple queues, no
// accounting, and no per-task resource limits.
package dispatch

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"falkon/internal/fproto"
	"falkon/internal/metrics"
	"falkon/internal/obs"
	"falkon/internal/replica"
	"falkon/internal/sched"
	"falkon/internal/task"
	"falkon/internal/wal"
	"falkon/internal/wsrpc"
)

// ReplicationOptions configures the dispatcher's WAL replication source.
type ReplicationOptions struct {
	// Term is this leader incarnation's election term (1 for a leader that
	// was never promoted).
	Term uint64
	// Mode selects async streaming or quorum-gated acknowledgment.
	Mode replica.Mode
	// MinAcks and QuorumTimeout tune the quorum barrier (see
	// replica.SourceOptions).
	MinAcks       int
	QuorumTimeout time.Duration
}

// Options configures a Dispatcher.
type Options struct {
	// Security and PSK configure the wsrpc transport profile.
	Security wsrpc.SecurityProfile
	PSK      []byte

	// Shards partitions the scheduling state into this many independently
	// locked cores (0 = GOMAXPROCS; 1 = the legacy single-lock layout).
	// Task→shard and executor→shard routing use stable hashes shared with
	// journal recovery, so a restart re-partitions identically.
	Shards int

	// NotifyWorkers sizes the notification engine's thread pool (default 4).
	NotifyWorkers int

	// ReplayTimeout re-dispatches tasks whose executor has not responded
	// within this duration (0 disables timeout-based replay; disconnect-
	// based replay is always on).
	ReplayTimeout time.Duration

	// MaxRetries bounds per-task re-dispatches (default 3). A task that
	// exhausts retries is reported failed.
	MaxRetries int

	// RetryOnFailure re-dispatches tasks whose result reports failure, per
	// the paper's replay policy (default true; set NoRetryOnFailure to
	// disable).
	NoRetryOnFailure bool

	// Policy selects the dispatch policy (default next-available, the
	// paper's evaluated policy; PolicyDataAware adds dataset affinity).
	Policy DispatchPolicy

	// CacheCapacity is the per-executor dataset cache size tracked by the
	// data-aware policy (default 16).
	CacheCapacity int

	// Metrics receives the dispatcher's counters, gauges, and stage
	// latency histograms (plus the wsrpc transport's per-method metrics).
	// Nil creates a private registry, retrievable via Metrics().
	Metrics *obs.Registry

	// TraceCapacity bounds the task-lifecycle event ring (default 8192
	// events; the ring never allocates once full).
	TraceCapacity int

	// JournalDir, when set, enables the write-ahead journal: every accept,
	// dispatch, and complete transition is logged there, and Listen
	// recovers surviving state from it before serving. Empty disables
	// durability entirely (no journal code on the hot path).
	JournalDir string

	// JournalSync is the journal fsync policy (default group commit).
	JournalSync wal.SyncPolicy

	// SnapshotEvery compacts the journal with a state snapshot after this
	// many appended records (default 65536; negative disables periodic
	// snapshots).
	SnapshotEvery int

	// JournalFS substitutes the journal's filesystem (chaos testing only;
	// nil uses the real OS).
	JournalFS wal.FS

	// OnJournalError, when set, is invoked once with the journal's first
	// sticky I/O error. A dispatcher whose journal cannot write can no
	// longer honor its durability barrier; daemons use this hook to
	// fail-stop and let recovery replay the intact prefix.
	OnJournalError func(error)

	// Replication, when set (requires JournalDir), streams the journal to
	// standby dispatchers: Listen creates a replica.Source fed by the
	// journal's Mirror hook and serves the attach/fetch replication RPCs.
	// Under ModeQuorum the durable-acknowledgment barriers (create, submit,
	// destroy) additionally wait for standby acks.
	Replication *ReplicationOptions

	// ClusterID names the HA cluster this dispatcher serves. Clients echo
	// it on cross-address re-attach; a dispatcher serving a different
	// cluster rejects the attach so an EPR never resolves against an
	// unrelated journal. Empty means standalone.
	ClusterID string

	// Faults, when set, interposes transport fault injection on every
	// accepted connection (chaos testing only).
	Faults wsrpc.ConnFaults

	// Tenants declares per-tenant fair-share weights, quotas, and rate
	// limits (see TenantSpec). Setting any spec turns on multi-tenant
	// accounting and submit-path admission control; tenants not listed are
	// tracked but unlimited.
	Tenants []TenantSpec

	// FairShare switches the scheduling cores to weighted fair-share
	// (start-time fair queuing) across tenants, using the weights from
	// Tenants. Off, the queue is the paper's single FIFO regardless of
	// tenancy.
	FairShare bool

	// Logf receives dispatcher logs; nil silences them.
	Logf func(format string, args ...any)
}

// taskRef is the core's task payload: the owning instance plus the task.
// inst is resolved once at enqueue so the finalize path never takes the
// instance-table lock.
type taskRef struct {
	epr  string
	t    task.Task
	inst *instance
}

// DefaultTenant is the tenant of instances created without one (including
// every pre-tenancy client).
const DefaultTenant = "default"

// taskTenant resolves the tenant a queued task belongs to (the fair-share
// core's tenant extractor).
func taskTenant(tr taskRef) string {
	if tr.inst != nil && tr.inst.tenant != "" {
		return tr.inst.tenant
	}
	return DefaultTenant
}

// execRef is the transport state hung off a sched.Exec (via Ref): the
// executor's connection, provisioner allocation, and home shard index.
type execRef struct {
	peer       *wsrpc.Peer
	allocation string
	home       int
}

// outKey identifies an outstanding (dispatched, unacknowledged) task.
type outKey struct {
	epr string
	id  task.ID
}

// dcore aliases the scheduling core instantiated for the live dispatcher:
// executors are identified by their string ID, outstanding tasks by
// (instance, task ID).
type dcore = sched.Core[string, outKey, taskRef]

// shard is one slice of the scheduling state: a Core under its own mutex,
// the WAL appender the shard's per-task records route through, and the
// shard's instruments. Lock order across the dispatcher:
//
//	imu (instance table) → shard.mu (one at a time, ascending when
//	several) → instance.mu → appender internals
//
// No handler ever holds two shard mutexes: work stealing pops under the
// victim's lock alone and assigns under the thief's home lock, with
// Dispatcher.limbo accounting for the hand-off window.
type shard struct {
	idx  int
	mu   sync.Mutex
	core *dcore
	app  *wal.Appender // per-shard journal appender (nil without journal)

	// qdepth mirrors core.QueueLen() outside the lock: the steal scan, the
	// cross-shard notify pass, and the falkon-top imbalance panel read it
	// lock-free.
	qdepth *metrics.Gauge
	// steals counts tasks this shard's executors took from other shards.
	steals *metrics.Counter

	// Per-shard dimension of the overhead histograms (the aggregate,
	// unlabeled-by-shard series lives on the Dispatcher).
	hLockWait  *metrics.FixedHistogram
	hSchedCore *metrics.FixedHistogram
}

// syncDepth republishes the shard's queue length. Callers hold s.mu and
// have just mutated the queue.
func (s *shard) syncDepth() {
	s.qdepth.Set(int64(s.core.QueueLen()))
}

// traceEv is one deferred tracer record.
type traceEv struct {
	at    time.Duration
	kind  obs.EventKind
	trace uint64
	id    task.ID
	epr   string
	exec  string
}

// resultPush is one deferred result notification ({8}) to a push-mode
// client.
type resultPush struct {
	peer *wsrpc.Peer
	epr  string
	r    task.Result
}

// notifyPush is one deferred work-available notification ({3}). It holds a
// snapshot of the executor fields taken under the shard lock — never the
// live *sched.Exec, which other handlers mutate concurrently once the lock
// is released.
type notifyPush struct {
	peer   *wsrpc.Peer
	exec   string
	at     time.Duration
	queued int
}

// stampRec is one deferred stage-latency observation: the stamps plus the
// tenant they are attributed to ("" when multi-tenancy is off, so the
// single-tenant flush path never looks up labeled histograms).
type stampRec struct {
	st     sched.Stamps
	tenant string
}

// fx accumulates a handler's side effects — trace records, stage-latency
// observations, work-available notifications, result pushes, and deferred
// cross-shard requeues — gathered while holding a shard lock and applied
// by flush after releasing it. Keeping this I/O outside the scheduler
// locks is what lets deliveries from many executors pipeline instead of
// serializing on tracer and histogram writes.
type fx struct {
	events   []traceEv
	stamps   []stampRec
	notifies []notifyPush
	pushes   []resultPush
	// requeues are replayed attempts owed back to their affinity shard.
	// They are deferred because the orphaning shard (the executor's home)
	// and the task's affinity shard can differ, and no handler holds two
	// shard locks; each entry holds one Dispatcher.limbo count until
	// requeueAll lands it.
	requeues []sched.Item[taskRef]
}

func (f *fx) trace(at time.Duration, kind obs.EventKind, trace uint64, id task.ID, epr, exec string) {
	f.events = append(f.events, traceEv{at, kind, trace, id, epr, exec})
}

// fxPool recycles fx backing arrays between handler calls: every Deliver
// gathers a handful of effects, and without reuse the append growth paths
// dominate the dispatcher's allocation profile.
var fxPool = sync.Pool{New: func() any { return new(fx) }}

func getFx() *fx { return fxPool.Get().(*fx) }

// putFx clears element references (peers, results, strings) so the pooled
// arrays don't pin them, and drops arrays that grew unusually large so one
// burst doesn't park megabytes in the pool.
func putFx(f *fx) {
	const keep = 1024
	if cap(f.events) > keep || cap(f.stamps) > keep || cap(f.notifies) > keep || cap(f.pushes) > keep || cap(f.requeues) > keep {
		*f = fx{}
	} else {
		clear(f.events)
		clear(f.stamps)
		clear(f.notifies)
		clear(f.pushes)
		clear(f.requeues)
		f.events = f.events[:0]
		f.stamps = f.stamps[:0]
		f.notifies = f.notifies[:0]
		f.pushes = f.pushes[:0]
		f.requeues = f.requeues[:0]
	}
	fxPool.Put(f)
}

// Dispatcher is the Falkon dispatch service. Create with New, then Listen.
type Dispatcher struct {
	opts  Options
	srv   *wsrpc.Server
	eng   *notifyEngine
	epoch time.Time

	reg    *obs.Registry
	tracer *obs.Tracer
	// hStage indexes the Figure-10 stage latency histograms in obs.Stages
	// order; hE2E is the end-to-end (enqueue→deliver) histogram the stages
	// partition exactly.
	hStage [sched.NStages]*metrics.FixedHistogram
	hE2E   *metrics.FixedHistogram
	// Scheduler-overhead histograms for the Submit/Deliver hot path: mutex
	// wait, core work under the mutex, deferred-effect flush, and the
	// group-commit durability wait. frame_write lives in wsrpc and
	// wal_commit in the journal's committer; together they account for
	// where the dispatcher's own time goes per RPC. These are the
	// aggregates; each shard also observes its own lock_wait/sched_core.
	hLockWait  *metrics.FixedHistogram
	hSchedCore *metrics.FixedHistogram
	hFxFlush   *metrics.FixedHistogram
	hWALWait   *metrics.FixedHistogram

	// tenants is the multi-tenant admission table (nil when multi-tenancy
	// is off — no admission checks, no per-tenant labels on the hot path).
	tenants *tenantTable
	// thMu guards tHists, the per-tenant labeled latency histograms. The
	// flush path takes the read lock only when a stamp carries a tenant.
	thMu   sync.RWMutex
	tHists map[string]*tenantHists

	// nshards is fixed at New; shards[i].core == sharded.Shard(i).
	nshards int
	sharded *sched.Sharded[string, outKey, taskRef]
	shards  []*shard

	// imu guards the instance table and EPR allocation — deliberately a
	// separate, small lock so instance lifecycle never contends with
	// scheduling. Submit/Collect take it only for the map lookup.
	imu       sync.RWMutex
	instances map[string]*instance
	nextEPR   int64

	// parents tracks attached tree parents (forwarder roots) that receive
	// capacity hints for bundle routing.
	parents parents

	// limbo counts tasks in motion between shard structures: a submit
	// between its draining check and its enqueues, a stolen task between
	// victim pop and home assign, a replayed task between executor drop and
	// affinity requeue. Drain's emptiness check requires limbo == 0, so
	// work never vanishes from its view mid-hand-off.
	limbo    atomic.Int64
	closed   atomic.Bool
	draining atomic.Bool
	// dmu/drained implement the single cross-shard drain condition: Drain
	// re-checks empty() itself; handlers just broadcast after removing
	// work. wakeDrain is the only place dmu nests inside nothing — no
	// handler holds a shard lock when broadcasting.
	dmu     sync.Mutex
	drained *sync.Cond

	sweeperStop chan struct{}
	sweeperDone chan struct{}

	// wal is the write-ahead journal (nil without JournalDir). Per-task
	// records route through the task's affinity shard's appender while that
	// shard's lock is held, so each appender's FIFO preserves the
	// accept→dispatch→complete order per task; control records (instance
	// create/destroy) ride appender 0, which every commit batch drains
	// first. A snapshot cut takes every shard lock, so the captured state
	// is an exact prefix of the journal.
	wal            *wal.Journal
	recoveredTasks int64 // pending tasks rebuilt at the last Listen
	// replSrc is the WAL replication source (nil without
	// Options.Replication). It is fed by the journal's Mirror hook and
	// consulted by the quorum barriers on the acknowledgment paths.
	replSrc   *replica.Source
	snapEvery int64
	snapMark  atomic.Int64 // journal append count at the last snapshot
	// smu serializes snapshot kickoff against Close so snapWG.Add never
	// races snapWG.Wait; snapBusy collapses concurrent kickoffs.
	smu      sync.Mutex
	snapBusy bool
	snapWG   sync.WaitGroup
}

// New constructs a dispatcher (not yet listening).
func New(opts Options) *Dispatcher {
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	n := opts.Shards
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	var fairShare *sched.FairShare
	if opts.FairShare {
		fairShare = &sched.FairShare{
			Weights:     tenantWeights(opts.Tenants),
			MaxQueuedBy: tenantMaxQueued(opts.Tenants),
		}
	}
	d := &Dispatcher{
		opts:    opts,
		epoch:   time.Now(),
		nshards: n,
		sharded: sched.NewSharded[string, outKey](n, sched.Options[taskRef]{
			Policy:        opts.Policy,
			CacheCapacity: opts.CacheCapacity,
			MaxRetries:    opts.MaxRetries,
			Dataset:       func(tr taskRef) string { return taskDataset(tr.t) },
			TaskRetries:   func(tr taskRef) int { return tr.t.MaxRetries },
			Tenant:        func(tr taskRef) string { return taskTenant(tr) },
			FairShare:     fairShare,
		}),
		instances: make(map[string]*instance),
		reg:       opts.Metrics,
		tracer:    obs.NewTracer(opts.TraceCapacity),
	}
	if len(opts.Tenants) > 0 || opts.FairShare {
		d.tenants = newTenantTable(opts.Tenants, d.now)
		d.tHists = make(map[string]*tenantHists)
	}
	d.shards = make([]*shard, n)
	for i := range d.shards {
		d.shards[i] = &shard{
			idx:        i,
			core:       d.sharded.Shard(i),
			qdepth:     d.reg.Gauge(obs.ShardKey(obs.MetricShardQueueDepth, i)),
			steals:     d.reg.Counter(obs.ShardKey(obs.MetricShardStealsTotal, i)),
			hLockWait:  d.reg.Histogram(obs.OverheadShardKey(obs.OverheadLockWait, i)),
			hSchedCore: d.reg.Histogram(obs.OverheadShardKey(obs.OverheadSchedCore, i)),
		}
	}
	d.drained = sync.NewCond(&d.dmu)
	for i, stage := range obs.Stages {
		d.hStage[i] = d.reg.Histogram(obs.StageKey(stage))
	}
	d.hE2E = d.reg.Histogram(obs.MetricE2ESeconds)
	d.hLockWait = d.reg.Histogram(obs.OverheadKey(obs.OverheadLockWait))
	d.hSchedCore = d.reg.Histogram(obs.OverheadKey(obs.OverheadSchedCore))
	d.hFxFlush = d.reg.Histogram(obs.OverheadKey(obs.OverheadFxFlush))
	d.hWALWait = d.reg.Histogram(obs.OverheadKey(obs.OverheadWALWait))
	d.eng = newNotifyEngine(opts.NotifyWorkers, opts.Logf,
		d.reg.Gauge("falkon_notify_queue_depth"), d.reg.Counter("falkon_notifications_total"),
		d.reg.Counter("falkon_notify_errors_total"))
	d.srv = wsrpc.NewServer(wsrpc.ServerOptions{Security: opts.Security, PSK: opts.PSK, Logf: d.logf, Metrics: d.reg, Faults: opts.Faults})
	d.register()
	d.srv.OnDisconnect(d.onDisconnect)
	return d
}

// now returns the dispatcher-epoch timestamp.
func (d *Dispatcher) now() time.Duration { return time.Since(d.epoch) }

func (d *Dispatcher) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// Shards returns the shard count the dispatcher runs with.
func (d *Dispatcher) Shards() int { return d.nshards }

// taskShard routes a task to its affinity shard: the same function journal
// recovery uses, so a restart re-partitions identically.
func (d *Dispatcher) taskShard(epr string, t task.Task) int {
	if d.nshards == 1 {
		return 0
	}
	return sched.TaskShard(d.nshards, taskDataset(t), sched.HashString(epr)^uint64(t.ID))
}

// refShard is taskShard against an enqueued taskRef, using the instance's
// cached EPR hash.
func (d *Dispatcher) refShard(tr taskRef) int {
	if d.nshards == 1 {
		return 0
	}
	var h uint64
	if tr.inst != nil {
		h = tr.inst.eprHash
	} else {
		h = sched.HashString(tr.epr)
	}
	return sched.TaskShard(d.nshards, taskDataset(tr.t), h^uint64(tr.t.ID))
}

// execShard routes an executor ID to its home shard.
func (d *Dispatcher) execShard(id string) int {
	return sched.ExecShardString(d.nshards, id)
}

// tenantHists is one tenant's labeled dimension of the stage and e2e
// latency histograms, cached per tenant so flush never rebuilds label keys
// on the hot path.
type tenantHists struct {
	stage [sched.NStages]*metrics.FixedHistogram
	e2e   *metrics.FixedHistogram
}

// tenantHistsFor returns tenant's labeled histogram set, creating it on
// first observation.
func (d *Dispatcher) tenantHistsFor(tenant string) *tenantHists {
	d.thMu.RLock()
	th, ok := d.tHists[tenant]
	d.thMu.RUnlock()
	if ok {
		return th
	}
	d.thMu.Lock()
	defer d.thMu.Unlock()
	if th, ok = d.tHists[tenant]; ok {
		return th
	}
	th = &tenantHists{e2e: d.reg.Histogram(obs.TenantKey(obs.MetricE2ESeconds, tenant))}
	for i, stage := range obs.Stages {
		th.stage[i] = d.reg.Histogram(obs.StageTenantKey(stage, tenant))
	}
	d.tHists[tenant] = th
	return th
}

// flush applies the effects gathered under shard locks. Must be called
// after releasing them: the tracer, histograms, and notification engine
// all have their own synchronization, and deferred requeues take other
// shards' locks.
func (d *Dispatcher) flush(f *fx) {
	if len(f.requeues) > 0 {
		d.requeueAll(f)
	}
	for _, e := range f.events {
		d.tracer.Record(e.at, e.kind, e.trace, e.id, e.epr, e.exec)
	}
	for _, rec := range f.stamps {
		var th *tenantHists
		if rec.tenant != "" {
			th = d.tenantHistsFor(rec.tenant)
		}
		for i, st := range rec.st.Stages() {
			d.hStage[i].Observe(st.Seconds())
			if th != nil {
				th.stage[i].Observe(st.Seconds())
			}
		}
		d.hE2E.Observe(rec.st.E2E().Seconds())
		if th != nil {
			th.e2e.Observe(rec.st.E2E().Seconds())
		}
	}
	for _, n := range f.notifies {
		d.tracer.Record(n.at, obs.EvNotified, 0, 0, "", n.exec)
		d.eng.notifyWork(n.peer, n.queued)
	}
	// Batch result pushes per (peer, instance): one ResultsNotify frame per
	// contiguous run instead of one per result. A Deliver handler's flush is
	// normally a single run, so the whole batch rides one frame; contiguity
	// (rather than a map) keeps per-instance result order intact.
	for start := 0; start < len(f.pushes); {
		p := f.pushes[start]
		end := start + 1
		for end < len(f.pushes) && f.pushes[end].peer == p.peer && f.pushes[end].epr == p.epr {
			end++
		}
		results := make([]task.Result, end-start)
		for i := start; i < end; i++ {
			results[i-start] = f.pushes[i].r
		}
		d.eng.push(p.peer, fproto.NotifyResults, fproto.ResultsNotify{EPR: p.epr, Results: results})
		start = end
	}
}

// requeueAll returns deferred replays to their affinity shards and runs
// those shards' notify passes. Runs first in flush, with no shard lock
// held. Each landed task releases the limbo count its replay took.
func (d *Dispatcher) requeueAll(f *fx) {
	now := d.now()
	for _, it := range f.requeues {
		s := d.shards[d.refShard(it.X)]
		s.mu.Lock()
		s.core.Requeue(it) // limit was already checked by replay; always true
		s.syncDepth()
		d.notifyShardLocked(f, s, now)
		s.mu.Unlock()
		d.limbo.Add(-1)
	}
	f.requeues = f.requeues[:0]
	d.crossNotify(f, now)
	d.wakeDrain()
}

// notifyShardLocked runs s's local notify pass, snapshotting each
// notification into f while still holding s.mu (the live *sched.Exec must
// not escape the critical section — concurrent handlers mutate it).
func (d *Dispatcher) notifyShardLocked(f *fx, s *shard, now time.Duration) {
	for _, n := range s.core.Notifications(now) {
		f.notifies = append(f.notifies, notifyPush{
			peer:   n.Exec.Ref.(*execRef).peer,
			exec:   n.Exec.ID,
			at:     n.Exec.LastNotifyAt,
			queued: n.Queued,
		})
	}
}

// crossNotify wakes idle executors on any shard for work queued anywhere:
// shard-local notify passes only cover their own queue, so enqueue paths
// (submit, requeue, register) follow with this global pass. Woken
// executors pull, and the pull path steals across shards. No-op with one
// shard or when nothing is queued; the scan reads the lock-free depth
// gauges and only locks shards that still have idle executors.
func (d *Dispatcher) crossNotify(f *fx, now time.Duration) {
	if d.nshards == 1 {
		return
	}
	queued := 0
	for _, s := range d.shards {
		queued += int(s.qdepth.Value())
	}
	if queued == 0 {
		return
	}
	for _, s := range d.shards {
		s.mu.Lock()
		if s.core.IdleLen() == 0 {
			s.mu.Unlock()
			continue
		}
		covered := 0
		for _, n := range s.core.NotifyIdle(now, queued) {
			covered += n.Exec.Free()
			f.notifies = append(f.notifies, notifyPush{
				peer:   n.Exec.Ref.(*execRef).peer,
				exec:   n.Exec.ID,
				at:     n.Exec.LastNotifyAt,
				queued: n.Queued,
			})
		}
		s.mu.Unlock()
		queued -= covered
		if queued <= 0 {
			return
		}
	}
}

// Listen binds the dispatcher to addr (":0" for an ephemeral port) and
// starts serving. With JournalDir set, it first recovers surviving state
// from the journal — instances, queued and in-flight tasks, and
// undelivered results all outlive a crash, re-partitioned onto shards by
// the same affinity hash that placed them originally.
func (d *Dispatcher) Listen(addr string) error {
	if d.opts.Replication != nil && d.opts.JournalDir == "" {
		return fmt.Errorf("dispatch: replication requires a journal (JournalDir)")
	}
	if d.opts.JournalDir != "" {
		var mirror func([]byte)
		if r := d.opts.Replication; r != nil {
			d.replSrc = replica.NewSource(replica.SourceOptions{
				Term:          r.Term,
				Mode:          r.Mode,
				MinAcks:       r.MinAcks,
				QuorumTimeout: r.QuorumTimeout,
				Baseline:      d.replicaBaseline,
				Metrics:       d.reg,
				Logf:          d.opts.Logf,
			})
			mirror = d.replSrc.Mirror
			d.replSrc.Register(d.srv)
		}
		st, j, info, err := wal.Recover(d.opts.JournalDir, wal.Options{
			Sync:    d.opts.JournalSync,
			Metrics: d.reg,
			Logf:    d.opts.Logf,
			FS:      d.opts.JournalFS,
			OnError: d.opts.OnJournalError,
			Mirror:  mirror,
		})
		if err != nil {
			return err
		}
		d.wal = j
		d.snapEvery = int64(d.opts.SnapshotEvery)
		if d.snapEvery == 0 {
			d.snapEvery = 1 << 16
		}
		apps := j.Appenders(d.nshards)
		for i, s := range d.shards {
			s.app = apps[i]
		}
		d.restore(st)
		d.recoveredTasks = int64(info.Pending)
		if info.Records > 0 || info.SnapshotIndex > 0 {
			d.logf("dispatch: recovered %d pending tasks, %d buffered results, %d instances (snapshot %d + %d records)",
				info.Pending, info.Results, len(st.Instances), info.SnapshotIndex, info.Records)
		}
	}
	if err := d.srv.Listen(addr); err != nil {
		return err
	}
	if d.opts.ReplayTimeout > 0 {
		d.sweeperStop = make(chan struct{})
		d.sweeperDone = make(chan struct{})
		go d.sweeper()
	}
	return nil
}

// restore loads recovered journal state into the empty shards: pending
// tasks re-enter their affinity shard's queue (outstanding-at-crash work
// simply becomes queued again — the executors that held it are gone),
// instances come back peer-less with their undelivered results buffered
// for redelivery. Runs before serving starts, so no locks are needed.
func (d *Dispatcher) restore(st *wal.State) {
	d.nextEPR = st.NextEPR
	// Aggregate lifecycle counters live summed-across-shards; park the
	// recovered totals on shard 0.
	d.shards[0].core.Counters = st.Counters
	for _, win := range st.Instances {
		tenant := win.Tenant
		if tenant == "" {
			tenant = DefaultTenant // pre-tenancy journal
		}
		inst := &instance{
			epr:       win.EPR,
			name:      win.Name,
			eprHash:   sched.HashString(win.EPR),
			notify:    win.Notify,
			tenant:    tenant,
			submitted: win.Submitted,
			results:   win.Results,
			live:      make(map[task.ID]struct{}, len(win.Results)),
		}
		for _, r := range win.Results {
			inst.live[r.ID] = struct{}{}
		}
		d.instances[win.EPR] = inst
	}
	now := d.now()
	for _, p := range st.Pending {
		inst, ok := d.instances[p.EPR]
		if !ok {
			continue // replay proved the instance gone; nothing to owe
		}
		s := d.shards[d.taskShard(p.EPR, p.Task)]
		s.core.Restore(now, taskRef{epr: p.EPR, t: p.Task, inst: inst}, p.Attempts)
		inst.live[p.Task.ID] = struct{}{}
		inst.inFlight++
		// Re-charge per-tenant in-flight accounting (bypassing admission:
		// the work was admitted before the crash).
		d.tenants.restore(inst.tenant, 1)
	}
	for _, s := range d.shards {
		s.syncDepth()
	}
}

// captureAllLocked snapshots the dispatcher state for the journal. Callers
// hold imu and every shard mutex, so the capture is a consistent cut.
func (d *Dispatcher) captureAllLocked() *wal.State {
	st := &wal.State{NextEPR: d.nextEPR, Counters: d.sharded.CountersSum()}
	for epr, inst := range d.instances {
		inst.mu.Lock()
		st.Instances = append(st.Instances, wal.Instance{
			EPR:       epr,
			Name:      inst.name,
			Notify:    inst.notify,
			Tenant:    inst.tenant,
			Submitted: inst.submitted,
			Results:   append([]task.Result(nil), inst.results...),
		})
		inst.mu.Unlock()
	}
	for _, s := range d.shards {
		s.core.EachQueued(func(it sched.Item[taskRef]) {
			st.Pending = append(st.Pending, wal.Pending{EPR: it.X.epr, Task: it.X.t, Attempts: it.Attempts, Tenant: taskTenant(it.X)})
		})
		s.core.EachOutstanding(func(o *sched.Outstanding[string, outKey, taskRef]) {
			st.Pending = append(st.Pending, wal.Pending{EPR: o.Item.X.epr, Task: o.Item.X.t, Attempts: o.Item.Attempts, Tenant: taskTenant(o.Item.X)})
		})
	}
	return st
}

// replicaBaseline produces a consistent cut for an attaching standby: the
// full dispatcher state and the replication-stream position it corresponds
// to. Rotation under every lock flushes all buffered appends through the
// Mirror hook (still under the journal's write mutex), so after Rotate
// returns the stream end is exactly the boundary the captured state sits
// at — a standby that Resets to (state, pos) and applies the stream from
// pos onward replays the same history the leader's own journal holds.
func (d *Dispatcher) replicaBaseline() (*wal.State, int64, error) {
	d.imu.Lock()
	for _, s := range d.shards {
		s.mu.Lock()
	}
	_, err := d.wal.Rotate()
	var st *wal.State
	var pos int64
	if err == nil {
		st = d.captureAllLocked()
		pos = d.replSrc.End()
	}
	for i := len(d.shards) - 1; i >= 0; i-- {
		d.shards[i].mu.Unlock()
	}
	d.imu.Unlock()
	return st, pos, err
}

// replicaBarrier extends a durability barrier with the quorum policy: after
// the journal handle's Wait released (the records are on local disk and,
// via the Mirror hook, already in the replication stream), wait for the
// standby acks the mode requires. No-op in async mode or standalone.
func (d *Dispatcher) replicaBarrier() {
	if d.replSrc != nil {
		d.replSrc.WaitCommitted(d.replSrc.End())
	}
}

// maybeSnapshot kicks an asynchronous snapshot once enough records have
// accumulated since the last one. The fast path is three atomic reads,
// cheap enough for the Deliver hot path; the kickoff itself serializes
// with Close via smu so snapWG.Add never races snapWG.Wait.
func (d *Dispatcher) maybeSnapshot() {
	if d.wal == nil || d.snapEvery < 0 || d.closed.Load() {
		return
	}
	if d.wal.Appends()-d.snapMark.Load() < d.snapEvery {
		return
	}
	d.smu.Lock()
	if d.snapBusy || d.closed.Load() {
		d.smu.Unlock()
		return
	}
	d.snapBusy = true
	d.snapWG.Add(1)
	d.smu.Unlock()
	go d.snapshot()
}

// snapshot rotates the journal and writes a snapshot at the cut. The
// rotation runs under every shard lock plus imu so the captured state is
// exactly the journal prefix below the cut; the (slower) snapshot write
// happens unlocked.
func (d *Dispatcher) snapshot() {
	defer d.snapWG.Done()
	d.imu.Lock()
	for _, s := range d.shards {
		s.mu.Lock()
	}
	cut, err := d.wal.Rotate()
	var st *wal.State
	var mark int64
	if err == nil {
		st = d.captureAllLocked()
		mark = d.wal.Appends()
	}
	for i := len(d.shards) - 1; i >= 0; i-- {
		d.shards[i].mu.Unlock()
	}
	d.imu.Unlock()
	if err != nil {
		d.endSnapshot()
		d.logf("dispatch: journal rotate failed: %v", err)
		return
	}

	start := time.Now()
	err = d.wal.WriteSnapshot(cut, st)
	dur := time.Since(start)
	d.snapMark.Store(mark)
	d.endSnapshot()
	if err != nil {
		d.logf("dispatch: snapshot failed: %v", err)
		return
	}
	d.reg.Counter("falkon_wal_snapshots_total").Inc()
	d.reg.Gauge("falkon_wal_snapshot_unixtime").Set(time.Now().Unix())
	d.reg.Histogram("falkon_wal_snapshot_seconds").Observe(dur.Seconds())
	d.logf("dispatch: journal snapshot %d (%d pending, %d instances) in %v", cut, len(st.Pending), len(st.Instances), dur)
}

func (d *Dispatcher) endSnapshot() {
	d.smu.Lock()
	d.snapBusy = false
	d.smu.Unlock()
}

// Addr returns the bound address.
func (d *Dispatcher) Addr() string { return d.srv.Addr() }

// Close shuts the dispatcher down. With a journal, every buffered record
// is flushed and fsynced before Close returns — a clean shutdown seals the
// journal.
func (d *Dispatcher) Close() error {
	if d.closed.Swap(true) {
		return nil
	}
	d.wakeDrainAlways() // release any Drain blocked on a dead system
	if d.replSrc != nil {
		d.replSrc.Close() // release blocked fetches and quorum barriers first
	}
	if d.sweeperStop != nil {
		close(d.sweeperStop)
		<-d.sweeperDone
	}
	err := d.srv.Close()
	d.eng.close()
	if d.wal != nil {
		// smu barrier: any maybeSnapshot that passed the closed check has
		// finished its Add by the time we acquire smu, so Wait is safe.
		d.smu.Lock()
		d.smu.Unlock() //nolint:staticcheck // empty section is the barrier
		d.snapWG.Wait()
		if werr := d.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// Abort simulates a crash for tests: the transport drops and the journal
// is abandoned without flushing its in-memory batch — only records the
// committer already wrote survive, the same post-condition as a kill -9.
func (d *Dispatcher) Abort() {
	if d.closed.Swap(true) {
		return
	}
	d.wakeDrainAlways()
	if d.replSrc != nil {
		d.replSrc.Close()
	}
	if d.sweeperStop != nil {
		close(d.sweeperStop)
		<-d.sweeperDone
	}
	d.srv.Close()
	d.eng.close()
	if d.wal != nil {
		d.smu.Lock()
		d.smu.Unlock() //nolint:staticcheck // empty section is the barrier
		d.snapWG.Wait()
		d.wal.Abort()
	}
}

// wakeDrain nudges blocked Drain calls after a handler (having released
// its shard lock) removed work from the system. One atomic load when not
// draining; Drain re-checks the real cross-shard condition itself.
func (d *Dispatcher) wakeDrain() {
	if !d.draining.Load() {
		return
	}
	d.wakeDrainAlways()
}

// wakeDrainAlways broadcasts under dmu: taking the lock first means a
// Drain that just observed a non-empty system is either still holding dmu
// (we wait, it will re-check after Wait) or already parked in Wait (the
// broadcast lands) — never between the two, so no wakeup is lost.
func (d *Dispatcher) wakeDrainAlways() {
	d.dmu.Lock()
	d.drained.Broadcast()
	d.dmu.Unlock()
}

// empty reports the single cross-shard drain condition: no task queued or
// outstanding on any shard, and none in limbo between shards.
func (d *Dispatcher) empty() bool {
	if d.limbo.Load() != 0 {
		return false
	}
	for _, s := range d.shards {
		s.mu.Lock()
		e := s.core.Empty()
		s.mu.Unlock()
		if !e {
			return false
		}
	}
	return true
}

// Drain puts the dispatcher into drain mode: new submissions are rejected
// while queued and in-flight tasks complete. It returns once the system is
// empty or the timeout expires (0 = wait forever), reporting whether the
// drain finished. The wait is event-driven: handlers broadcast after
// removing work, and Drain re-evaluates the cross-shard emptiness
// condition, so it wakes as the last result arrives rather than on a poll
// tick.
func (d *Dispatcher) Drain(timeout time.Duration) bool {
	d.draining.Store(true)
	d.dmu.Lock()
	defer d.dmu.Unlock()
	timedOut := false
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			d.dmu.Lock()
			timedOut = true
			d.dmu.Unlock()
			d.drained.Broadcast()
		})
		defer t.Stop()
	}
	for !d.empty() {
		if timedOut {
			return false
		}
		if d.closed.Load() {
			return d.empty()
		}
		d.drained.Wait()
	}
	return true
}

// Stats snapshots dispatcher state (also served as an RPC for remote
// provisioners). Per-shard rows are always populated; aggregate fields sum
// them.
func (d *Dispatcher) Stats() fproto.StatsReply {
	var st fproto.StatsReply
	var ct sched.Counters
	var tenantQueued map[string]int
	if d.tenants != nil {
		tenantQueued = make(map[string]int)
	}
	st.Shards = make([]fproto.ShardStats, d.nshards)
	for i, s := range d.shards {
		s.mu.Lock()
		c := s.core.Counters
		q, o := s.core.QueueLen(), s.core.OutstandingLen()
		total, busy := s.core.ExecStats()
		if tenantQueued != nil {
			s.core.TenantQueueLens(tenantQueued)
		}
		s.mu.Unlock()
		ct.Submitted += c.Submitted
		ct.Completed += c.Completed
		ct.Failed += c.Failed
		ct.Retried += c.Retried
		ct.Dispatched += c.Dispatched
		ct.Duplicates += c.Duplicates
		ct.CacheHits += c.CacheHits
		ct.CacheMisses += c.CacheMisses
		st.Queued += q
		st.Outstanding += o
		st.TotalExecutors += total
		st.BusyExecutors += busy
		st.Shards[i] = fproto.ShardStats{
			Shard:       i,
			Queued:      q,
			Outstanding: o,
			Executors:   total,
			Busy:        busy,
			Steals:      s.steals.Value(),
		}
	}
	st.Submitted = ct.Submitted
	st.Completed = ct.Completed
	st.Failed = ct.Failed
	st.Retried = ct.Retried
	st.Dispatched = ct.Dispatched
	st.Duplicates = ct.Duplicates
	st.CacheHits = ct.CacheHits
	st.CacheMisses = ct.CacheMisses
	st.IdleExecutors = st.TotalExecutors - st.BusyExecutors
	st.NotifyErrors = d.eng.errs.Value()
	st.Tenants = d.tenants.snapshot(tenantQueued)
	d.imu.RLock()
	st.Instances = len(d.instances)
	d.imu.RUnlock()
	if d.wal != nil {
		st.Journal = true
		st.JournalAppends = d.wal.Appends()
		st.JournalFsyncs = d.wal.Fsyncs()
		st.RecoveredTasks = d.recoveredTasks
	}
	if d.replSrc != nil {
		st.Replication = d.replSrc.Stats()
	}
	return st
}

// Metrics returns the dispatcher's metric registry (for mounting a debug
// HTTP endpoint or registering additional instruments).
func (d *Dispatcher) Metrics() *obs.Registry { return d.reg }

// Tracer returns the task-lifecycle event ring.
func (d *Dispatcher) Tracer() *obs.Tracer { return d.tracer }

// SpanHeader describes the dispatcher's span dump for offline merging. The
// dispatcher is the reference clock of the corrected timeline, so its
// offset is zero by definition.
func (d *Dispatcher) SpanHeader() obs.DumpHeader {
	return obs.DumpHeader{Proc: "dispatcher", EpochUnixNano: d.epoch.UnixNano()}
}

// MetricsSnapshot captures the full registry plus live queue/executor
// gauges and lifecycle counters — the falkon.metrics RPC body.
func (d *Dispatcher) MetricsSnapshot() obs.MetricsSnapshot {
	st := d.Stats()
	d.reg.Gauge("falkon_queue_depth").Set(int64(st.Queued))
	d.reg.Gauge("falkon_outstanding_tasks").Set(int64(st.Outstanding))
	d.reg.Gauge("falkon_instances").Set(int64(st.Instances))
	d.reg.Gauge(obs.Labeled("falkon_executors", "state", "idle")).Set(int64(st.IdleExecutors))
	d.reg.Gauge(obs.Labeled("falkon_executors", "state", "busy")).Set(int64(st.BusyExecutors))
	s := d.reg.Snapshot()
	// Lifecycle counters live in the scheduling cores rather than in the
	// registry, so fold them into the snapshot here.
	s.Counters["falkon_tasks_submitted_total"] = st.Submitted
	s.Counters["falkon_tasks_completed_total"] = st.Completed
	s.Counters["falkon_tasks_failed_total"] = st.Failed
	s.Counters["falkon_tasks_retried_total"] = st.Retried
	s.Counters["falkon_tasks_dispatched_total"] = st.Dispatched
	s.Counters["falkon_duplicate_deliveries_total"] = st.Duplicates
	return s
}

// onDisconnect requeues work from dropped executors and detaches dropped
// client instances so their results buffer instead of being pushed into a
// dead connection (they flush when the client re-attaches).
func (d *Dispatcher) onDisconnect(p *wsrpc.Peer) {
	meta, _ := p.Meta().(string)
	if meta == "" {
		// Client connections carry no meta; detach any instances bound to
		// this peer, and forget it as a tree parent if it attached as one.
		// Standby replication connections also land here.
		if d.replSrc != nil {
			d.replSrc.DropPeer(p)
		}
		d.parents.drop(p)
		d.imu.RLock()
		for _, inst := range d.instances {
			inst.mu.Lock()
			if inst.peer == p {
				inst.peer = nil
			}
			inst.mu.Unlock()
		}
		d.imu.RUnlock()
		return
	}
	f := getFx()
	defer putFx(f)
	s := d.shards[d.execShard(meta)]
	s.mu.Lock()
	ex, ok := s.core.Exec(meta)
	if !ok || ex.Ref.(*execRef).peer != p {
		s.mu.Unlock()
		return // a newer connection re-registered the id
	}
	_, dropped := s.core.DropExecutor(meta)
	for _, o := range dropped {
		d.replay(f, s, o, fmt.Sprintf("executor %s disconnected", meta))
	}
	if len(dropped) > 0 {
		d.notifyShardLocked(f, s, d.now())
	}
	s.mu.Unlock()
	d.wakeDrain()
	if len(dropped) > 0 {
		d.logf("dispatch: executor %s dropped with %d tasks in flight", meta, len(dropped))
	}
	d.flush(f)
	d.noteCapacityChange(true) // executor population changed
}

// replay applies the replay policy to an orphaned attempt: while retries
// remain the item is deferred into f.requeues (landed on its affinity
// shard by flush — which may differ from s, and no handler holds two shard
// locks), otherwise the task is finalized failed. Callers hold s.mu, the
// shard the attempt was outstanding on.
func (d *Dispatcher) replay(f *fx, s *shard, o *sched.Outstanding[string, outKey, taskRef], reason string) {
	if o.Item.Attempts <= s.core.RetryLimit(o.Item) {
		d.limbo.Add(1)
		f.requeues = append(f.requeues, o.Item)
		f.trace(d.now(), obs.EvRetried, o.Item.X.t.Trace, o.Item.X.t.ID, o.Item.X.epr, o.Executor)
		return
	}
	d.finalize(f, s, o.Item.X, task.Result{
		ID:           o.Item.X.t.ID,
		Trace:        o.Item.X.t.Trace,
		Err:          "retries exhausted: " + reason,
		ExitCode:     -1,
		QueuedAt:     o.Item.QueuedAt,
		DispatchedAt: o.DispatchedAt,
		StartedAt:    d.now(),
		FinishedAt:   d.now(),
		Attempts:     o.Item.Attempts,
	})
}

// assignLocked pops up to max tasks from s's own queue for executor ex
// (homed on s), recording them as outstanding. It returns the protocol
// assignments. piggy marks assignments riding a deliver acknowledgment
// rather than a work pull. Callers hold s.mu.
func (d *Dispatcher) assignLocked(f *fx, s *shard, ex *sched.Exec[string], max int, piggy bool) []fproto.Assignment {
	if max <= 0 {
		max = 1
	}
	kind := obs.EvPulled
	if piggy {
		kind = obs.EvAcked
	}
	var as []fproto.Assignment
	now := d.now()
	for len(as) < max {
		it, hit, ok := s.core.Pick(ex)
		if !ok {
			break
		}
		if it.X.inst == nil || it.X.inst.destroyed.Load() {
			// Instance destroyed while queued: the task is shed here and
			// never finalizes, so retire its tenant in-flight charge now.
			d.tenants.release(taskTenant(it.X), 1, false)
			continue
		}
		s.core.Assign(now, ex, outKey{it.X.epr, it.X.t.ID}, it)
		if s.app != nil {
			// Advisory record: recovery uses it to restore attempt counts.
			// Tasks in s's own queue have affinity s, so s.app IS the task's
			// affinity appender and per-task record order is preserved.
			s.app.Append(wal.KindDispatch, wal.DispatchRec{EPR: it.X.epr, ID: it.X.t.ID, Exec: ex.ID, Shard: s.idx})
		}
		f.trace(now, kind, it.X.t.Trace, it.X.t.ID, it.X.epr, ex.ID)
		as = append(as, fproto.Assignment{EPR: it.X.epr, Task: it.X.t, CacheHit: hit})
	}
	return as
}

// stolen is one task in flight from a victim shard to a thief's home.
type stolen struct {
	it sched.Item[taskRef]
	v  *shard
}

// queuedElsewhere reports (lock-free) whether any other shard has queued
// work worth stealing.
func (d *Dispatcher) queuedElsewhere(home *shard) bool {
	if d.nshards == 1 {
		return false
	}
	for _, s := range d.shards {
		if s != home && s.qdepth.Value() > 0 {
			return true
		}
	}
	return false
}

// stealTasks pops up to max tasks from other shards' queues, scanning
// victims in deterministic order home+1, home+2, ... guided by the
// lock-free depth gauges. Only the victim's lock is held while popping —
// never two shard locks — and each popped task holds a limbo count until
// assignStolen lands or drops it. The steal is policy-blind FIFO
// (PickAny): no dataset cache is consulted, so no executor state is read
// under a foreign shard's lock.
func (d *Dispatcher) stealTasks(home, max int) []stolen {
	var st []stolen
	for i := 1; i < d.nshards && len(st) < max; i++ {
		v := d.shards[(home+i)%d.nshards]
		if v.qdepth.Value() == 0 {
			continue
		}
		v.mu.Lock()
		for len(st) < max {
			it, ok := v.core.PickAny()
			if !ok {
				break
			}
			d.limbo.Add(1)
			st = append(st, stolen{it, v})
		}
		v.syncDepth()
		v.mu.Unlock()
	}
	return st
}

// assignStolen records stolen tasks as outstanding on ex's home shard s
// and returns their assignments. Dispatch records route through each
// task's affinity (victim) appender, keeping per-task journal order. If ex
// was dropped while the steal ran (its registration changed under us), the
// tasks go back to their affinity shards via f.requeues instead.  Callers
// hold s.mu.
func (d *Dispatcher) assignStolen(f *fx, s *shard, ex *sched.Exec[string], items []stolen, piggy bool) []fproto.Assignment {
	if len(items) == 0 {
		return nil
	}
	if cur, ok := s.core.Exec(ex.ID); !ok || cur != ex {
		for _, st := range items {
			f.requeues = append(f.requeues, st.it) // keeps the limbo count
		}
		return nil
	}
	kind := obs.EvPulled
	if piggy {
		kind = obs.EvAcked
	}
	var as []fproto.Assignment
	now := d.now()
	for _, st := range items {
		it := st.it
		if it.X.inst == nil || it.X.inst.destroyed.Load() {
			d.tenants.release(taskTenant(it.X), 1, false)
			d.limbo.Add(-1)
			continue // instance destroyed while queued
		}
		s.core.Assign(now, ex, outKey{it.X.epr, it.X.t.ID}, it)
		s.steals.Inc()
		if st.v.app != nil {
			st.v.app.Append(wal.KindDispatch, wal.DispatchRec{EPR: it.X.epr, ID: it.X.t.ID, Exec: ex.ID, Shard: st.v.idx})
		}
		f.trace(now, kind, it.X.t.Trace, it.X.t.ID, it.X.epr, ex.ID)
		as = append(as, fproto.Assignment{EPR: it.X.epr, Task: it.X.t, CacheHit: false})
		d.limbo.Add(-1)
	}
	return as
}

// finalize delivers a finished result to its instance (push or buffer).
// Callers hold s.mu — the shard whose counters absorb the completion; the
// push itself is deferred into f. The complete record routes through the
// task's affinity appender so it serializes after that task's accept and
// dispatch records.
func (d *Dispatcher) finalize(f *fx, s *shard, tr taskRef, r task.Result) {
	if d.wal != nil {
		ai := d.refShard(tr)
		// Logged with the payload so undelivered results survive a crash
		// and are redelivered on recovery (clients dedupe by task ID).
		d.shards[ai].app.Append(wal.KindComplete, wal.CompleteRec{EPR: tr.epr, Result: r, Shard: ai})
	}
	if r.Failed() {
		s.core.Counters.Failed++
		f.trace(d.now(), obs.EvFailed, r.Trace, r.ID, tr.epr, r.ExecutorID)
	} else {
		s.core.Counters.Completed++
	}
	// Tenant accounting retires the task whether or not the instance is
	// still around to receive the result.
	d.tenants.release(taskTenant(tr), 1, r.Failed())
	inst := tr.inst
	if inst == nil || inst.destroyed.Load() {
		return
	}
	inst.mu.Lock()
	inst.inFlight--
	if inst.notify && inst.peer != nil {
		if inst.live != nil {
			delete(inst.live, r.ID) // pushed: delivery obligation discharged
		}
		peer := inst.peer
		inst.mu.Unlock()
		f.pushes = append(f.pushes, resultPush{peer: peer, epr: tr.epr, r: r})
		return
	}
	inst.addResult(r)
	inst.mu.Unlock()
}

// sweeper periodically applies the timeout half of the replay policy
// across every shard.
func (d *Dispatcher) sweeper() {
	defer close(d.sweeperDone)
	interval := d.opts.ReplayTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-d.sweeperStop:
			return
		case <-tick.C:
		}
		cutoff := d.now() - d.opts.ReplayTimeout
		var f fx
		total := 0
		for _, s := range d.shards {
			s.mu.Lock()
			expired := s.core.Expire(cutoff)
			for _, o := range expired {
				d.replay(&f, s, o, "replay timeout")
			}
			if len(expired) > 0 {
				d.notifyShardLocked(&f, s, d.now())
			}
			s.mu.Unlock()
			total += len(expired)
		}
		d.wakeDrain()
		if total > 0 {
			d.logf("dispatch: replayed %d timed-out tasks", total)
		}
		d.flush(&f)
	}
}
