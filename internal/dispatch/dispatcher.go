// Package dispatch implements the Falkon dispatcher: the streamlined task
// dispatch service at the core of the paper. It accepts bundled task
// submissions from clients, maintains a FIFO queue per the next-available
// dispatch policy, pushes work-available notifications to idle executors,
// serves work pulls, accepts result deliveries with piggy-backed work
// requests, applies the replay policy (re-dispatch on failure or timeout),
// and exposes the state the provisioner polls.
//
// The scheduling state machine itself — queue, executor table, outstanding
// table, replay policy, pick policies — lives in internal/sched, shared
// with the virtual-time simulator. This package drives it from wall-clock
// time under one mutex and owns everything transport-shaped: wsrpc
// connections, the notification engine, tracing, and metrics. Handlers
// gather the core's effects (trace events, notification pushes, stage
// observations) under the mutex and apply them after releasing it, so no
// I/O ever runs inside the scheduler's critical section.
//
// In keeping with the paper's design (§1, §7), the dispatcher deliberately
// omits LRM features: there are no priorities, no multiple queues, no
// accounting, and no per-task resource limits.
package dispatch

import (
	"fmt"
	"sync"
	"time"

	"falkon/internal/fproto"
	"falkon/internal/metrics"
	"falkon/internal/obs"
	"falkon/internal/sched"
	"falkon/internal/task"
	"falkon/internal/wal"
	"falkon/internal/wsrpc"
)

// Options configures a Dispatcher.
type Options struct {
	// Security and PSK configure the wsrpc transport profile.
	Security wsrpc.SecurityProfile
	PSK      []byte

	// NotifyWorkers sizes the notification engine's thread pool (default 4).
	NotifyWorkers int

	// ReplayTimeout re-dispatches tasks whose executor has not responded
	// within this duration (0 disables timeout-based replay; disconnect-
	// based replay is always on).
	ReplayTimeout time.Duration

	// MaxRetries bounds per-task re-dispatches (default 3). A task that
	// exhausts retries is reported failed.
	MaxRetries int

	// RetryOnFailure re-dispatches tasks whose result reports failure, per
	// the paper's replay policy (default true; set NoRetryOnFailure to
	// disable).
	NoRetryOnFailure bool

	// Policy selects the dispatch policy (default next-available, the
	// paper's evaluated policy; PolicyDataAware adds dataset affinity).
	Policy DispatchPolicy

	// CacheCapacity is the per-executor dataset cache size tracked by the
	// data-aware policy (default 16).
	CacheCapacity int

	// Metrics receives the dispatcher's counters, gauges, and stage
	// latency histograms (plus the wsrpc transport's per-method metrics).
	// Nil creates a private registry, retrievable via Metrics().
	Metrics *obs.Registry

	// TraceCapacity bounds the task-lifecycle event ring (default 8192
	// events; the ring never allocates once full).
	TraceCapacity int

	// JournalDir, when set, enables the write-ahead journal: every accept,
	// dispatch, and complete transition is logged there, and Listen
	// recovers surviving state from it before serving. Empty disables
	// durability entirely (no journal code on the hot path).
	JournalDir string

	// JournalSync is the journal fsync policy (default group commit).
	JournalSync wal.SyncPolicy

	// SnapshotEvery compacts the journal with a state snapshot after this
	// many appended records (default 65536; negative disables periodic
	// snapshots).
	SnapshotEvery int

	// JournalFS substitutes the journal's filesystem (chaos testing only;
	// nil uses the real OS).
	JournalFS wal.FS

	// OnJournalError, when set, is invoked once with the journal's first
	// sticky I/O error. A dispatcher whose journal cannot write can no
	// longer honor its durability barrier; daemons use this hook to
	// fail-stop and let recovery replay the intact prefix.
	OnJournalError func(error)

	// Faults, when set, interposes transport fault injection on every
	// accepted connection (chaos testing only).
	Faults wsrpc.ConnFaults

	// Logf receives dispatcher logs; nil silences them.
	Logf func(format string, args ...any)
}

// taskRef is the core's task payload: the owning instance plus the task.
type taskRef struct {
	epr string
	t   task.Task
}

// execRef is the transport state hung off a sched.Exec (via Ref): the
// executor's connection and provisioner allocation.
type execRef struct {
	peer       *wsrpc.Peer
	allocation string
}

// outKey identifies an outstanding (dispatched, unacknowledged) task.
type outKey struct {
	epr string
	id  task.ID
}

// dcore aliases the scheduling core instantiated for the live dispatcher:
// executors are identified by their string ID, outstanding tasks by
// (instance, task ID).
type dcore = sched.Core[string, outKey, taskRef]

// traceEv is one deferred tracer record.
type traceEv struct {
	at    time.Duration
	kind  obs.EventKind
	trace uint64
	id    task.ID
	epr   string
	exec  string
}

// resultPush is one deferred result notification ({8}) to a push-mode
// client.
type resultPush struct {
	peer *wsrpc.Peer
	epr  string
	r    task.Result
}

// notifyPush is one deferred work-available notification ({3}). It holds a
// snapshot of the executor fields taken under d.mu — never the live
// *sched.Exec, which other handlers mutate concurrently once the lock is
// released.
type notifyPush struct {
	peer   *wsrpc.Peer
	exec   string
	at     time.Duration
	queued int
}

// fx accumulates a handler's side effects — trace records, stage-latency
// observations, work-available notifications, and result pushes — gathered
// while holding d.mu and applied by flush after releasing it. Keeping this
// I/O outside the scheduler lock is what lets deliveries from many
// executors pipeline instead of serializing on tracer and histogram
// writes.
type fx struct {
	events   []traceEv
	stamps   []sched.Stamps
	notifies []notifyPush
	pushes   []resultPush
}

func (f *fx) trace(at time.Duration, kind obs.EventKind, trace uint64, id task.ID, epr, exec string) {
	f.events = append(f.events, traceEv{at, kind, trace, id, epr, exec})
}

// fxPool recycles fx backing arrays between handler calls: every Deliver
// gathers a handful of effects, and without reuse the append growth paths
// dominate the dispatcher's allocation profile.
var fxPool = sync.Pool{New: func() any { return new(fx) }}

func getFx() *fx { return fxPool.Get().(*fx) }

// putFx clears element references (peers, results, strings) so the pooled
// arrays don't pin them, and drops arrays that grew unusually large so one
// burst doesn't park megabytes in the pool.
func putFx(f *fx) {
	const keep = 1024
	if cap(f.events) > keep || cap(f.stamps) > keep || cap(f.notifies) > keep || cap(f.pushes) > keep {
		*f = fx{}
	} else {
		clear(f.events)
		clear(f.notifies)
		clear(f.pushes)
		f.events = f.events[:0]
		f.stamps = f.stamps[:0]
		f.notifies = f.notifies[:0]
		f.pushes = f.pushes[:0]
	}
	fxPool.Put(f)
}

// Dispatcher is the Falkon dispatch service. Create with New, then Listen.
type Dispatcher struct {
	opts  Options
	srv   *wsrpc.Server
	eng   *notifyEngine
	epoch time.Time

	reg    *obs.Registry
	tracer *obs.Tracer
	// hStage indexes the Figure-10 stage latency histograms in obs.Stages
	// order; hE2E is the end-to-end (enqueue→deliver) histogram the stages
	// partition exactly.
	hStage [sched.NStages]*metrics.FixedHistogram
	hE2E   *metrics.FixedHistogram
	// Scheduler-overhead histograms for the Submit/Deliver hot path: mutex
	// wait, core work under the mutex, deferred-effect flush, and the
	// group-commit durability wait. frame_write lives in wsrpc and
	// wal_commit in the journal's committer; together they account for
	// where the dispatcher's own time goes per RPC.
	hLockWait  *metrics.FixedHistogram
	hSchedCore *metrics.FixedHistogram
	hFxFlush   *metrics.FixedHistogram
	hWALWait   *metrics.FixedHistogram

	mu        sync.Mutex
	core      *dcore
	instances map[string]*instance
	nextEPR   int64
	closed    bool
	draining  bool
	// drained wakes Drain when the system empties (queue and outstanding
	// both zero); signalled by wakeDrainLocked.
	drained     *sync.Cond
	sweeperStop chan struct{}
	sweeperDone chan struct{}

	// wal is the write-ahead journal (nil without JournalDir). Every
	// journal append happens while holding d.mu — only durability waits
	// happen after unlock — so journal order equals state-mutation order,
	// and a snapshot cut taken under d.mu is an exact prefix of the state.
	wal            *wal.Journal
	recoveredTasks int64 // pending tasks rebuilt at the last Listen
	snapEvery      int64
	snapMark       int64 // journal append count at the last snapshot
	snapBusy       bool
	snapWG         sync.WaitGroup
}

// New constructs a dispatcher (not yet listening).
func New(opts Options) *Dispatcher {
	if opts.Metrics == nil {
		opts.Metrics = obs.NewRegistry()
	}
	d := &Dispatcher{
		opts:  opts,
		epoch: time.Now(),
		core: sched.NewCore[string, outKey](sched.Options[taskRef]{
			Policy:        opts.Policy,
			CacheCapacity: opts.CacheCapacity,
			MaxRetries:    opts.MaxRetries,
			Dataset:       func(tr taskRef) string { return taskDataset(tr.t) },
			TaskRetries:   func(tr taskRef) int { return tr.t.MaxRetries },
		}),
		instances: make(map[string]*instance),
		reg:       opts.Metrics,
		tracer:    obs.NewTracer(opts.TraceCapacity),
	}
	d.drained = sync.NewCond(&d.mu)
	for i, stage := range obs.Stages {
		d.hStage[i] = d.reg.Histogram(obs.StageKey(stage))
	}
	d.hE2E = d.reg.Histogram(obs.MetricE2ESeconds)
	d.hLockWait = d.reg.Histogram(obs.OverheadKey(obs.OverheadLockWait))
	d.hSchedCore = d.reg.Histogram(obs.OverheadKey(obs.OverheadSchedCore))
	d.hFxFlush = d.reg.Histogram(obs.OverheadKey(obs.OverheadFxFlush))
	d.hWALWait = d.reg.Histogram(obs.OverheadKey(obs.OverheadWALWait))
	d.eng = newNotifyEngine(opts.NotifyWorkers, opts.Logf,
		d.reg.Gauge("falkon_notify_queue_depth"), d.reg.Counter("falkon_notifications_total"),
		d.reg.Counter("falkon_notify_errors_total"))
	d.srv = wsrpc.NewServer(wsrpc.ServerOptions{Security: opts.Security, PSK: opts.PSK, Logf: d.logf, Metrics: d.reg, Faults: opts.Faults})
	d.register()
	d.srv.OnDisconnect(d.onDisconnect)
	return d
}

// now returns the dispatcher-epoch timestamp.
func (d *Dispatcher) now() time.Duration { return time.Since(d.epoch) }

func (d *Dispatcher) logf(format string, args ...any) {
	if d.opts.Logf != nil {
		d.opts.Logf(format, args...)
	}
}

// flush applies the effects gathered under d.mu. Must be called after
// releasing the mutex: the tracer, histograms, and notification engine
// all have their own synchronization.
func (d *Dispatcher) flush(f *fx) {
	for _, e := range f.events {
		d.tracer.Record(e.at, e.kind, e.trace, e.id, e.epr, e.exec)
	}
	for _, s := range f.stamps {
		for i, st := range s.Stages() {
			d.hStage[i].Observe(st.Seconds())
		}
		d.hE2E.Observe(s.E2E().Seconds())
	}
	for _, n := range f.notifies {
		d.tracer.Record(n.at, obs.EvNotified, 0, 0, "", n.exec)
		d.eng.notifyWork(n.peer, n.queued)
	}
	// Batch result pushes per (peer, instance): one ResultsNotify frame per
	// contiguous run instead of one per result. A Deliver handler's flush is
	// normally a single run, so the whole batch rides one frame; contiguity
	// (rather than a map) keeps per-instance result order intact.
	for start := 0; start < len(f.pushes); {
		p := f.pushes[start]
		end := start + 1
		for end < len(f.pushes) && f.pushes[end].peer == p.peer && f.pushes[end].epr == p.epr {
			end++
		}
		results := make([]task.Result, end-start)
		for i := start; i < end; i++ {
			results[i-start] = f.pushes[i].r
		}
		d.eng.push(p.peer, fproto.NotifyResults, fproto.ResultsNotify{EPR: p.epr, Results: results})
		start = end
	}
}

// Listen binds the dispatcher to addr (":0" for an ephemeral port) and
// starts serving. With JournalDir set, it first recovers surviving state
// from the journal — instances, queued and in-flight tasks, and
// undelivered results all outlive a crash.
func (d *Dispatcher) Listen(addr string) error {
	if d.opts.JournalDir != "" {
		st, j, info, err := wal.Recover(d.opts.JournalDir, wal.Options{
			Sync:    d.opts.JournalSync,
			Metrics: d.reg,
			Logf:    d.opts.Logf,
			FS:      d.opts.JournalFS,
			OnError: d.opts.OnJournalError,
		})
		if err != nil {
			return err
		}
		d.wal = j
		d.snapEvery = int64(d.opts.SnapshotEvery)
		if d.snapEvery == 0 {
			d.snapEvery = 1 << 16
		}
		d.mu.Lock()
		d.restoreLocked(st)
		d.mu.Unlock()
		d.recoveredTasks = int64(info.Pending)
		if info.Records > 0 || info.SnapshotIndex > 0 {
			d.logf("dispatch: recovered %d pending tasks, %d buffered results, %d instances (snapshot %d + %d records)",
				info.Pending, info.Results, len(st.Instances), info.SnapshotIndex, info.Records)
		}
	}
	if err := d.srv.Listen(addr); err != nil {
		return err
	}
	if d.opts.ReplayTimeout > 0 {
		d.sweeperStop = make(chan struct{})
		d.sweeperDone = make(chan struct{})
		go d.sweeper()
	}
	return nil
}

// restoreLocked loads recovered journal state into the empty core: pending
// tasks re-enter the queue (outstanding-at-crash work simply becomes
// queued again — the executors that held it are gone), instances come back
// peer-less with their undelivered results buffered for redelivery.
func (d *Dispatcher) restoreLocked(st *wal.State) {
	d.nextEPR = st.NextEPR
	d.core.Counters = st.Counters
	for _, win := range st.Instances {
		inst := &instance{
			epr:       win.EPR,
			name:      win.Name,
			notify:    win.Notify,
			submitted: win.Submitted,
			results:   win.Results,
			live:      make(map[task.ID]struct{}, len(win.Results)),
		}
		for _, r := range win.Results {
			inst.live[r.ID] = struct{}{}
		}
		d.instances[win.EPR] = inst
	}
	now := d.now()
	for _, p := range st.Pending {
		d.core.Restore(now, taskRef{epr: p.EPR, t: p.Task}, p.Attempts)
		if inst, ok := d.instances[p.EPR]; ok {
			inst.live[p.Task.ID] = struct{}{}
			inst.inFlight++
		}
	}
}

// captureLocked snapshots the dispatcher state for the journal. Callers
// hold d.mu.
func (d *Dispatcher) captureLocked() *wal.State {
	st := &wal.State{NextEPR: d.nextEPR, Counters: d.core.Counters}
	for epr, inst := range d.instances {
		st.Instances = append(st.Instances, wal.Instance{
			EPR:       epr,
			Name:      inst.name,
			Notify:    inst.notify,
			Submitted: inst.submitted,
			Results:   append([]task.Result(nil), inst.results...),
		})
	}
	d.core.EachQueued(func(it sched.Item[taskRef]) {
		st.Pending = append(st.Pending, wal.Pending{EPR: it.X.epr, Task: it.X.t, Attempts: it.Attempts})
	})
	d.core.EachOutstanding(func(o *sched.Outstanding[string, outKey, taskRef]) {
		st.Pending = append(st.Pending, wal.Pending{EPR: o.Item.X.epr, Task: o.Item.X.t, Attempts: o.Item.Attempts})
	})
	return st
}

// maybeSnapshotLocked kicks an asynchronous snapshot once enough records
// have accumulated since the last one. Callers hold d.mu; the check is two
// atomic reads, cheap enough for the Deliver hot path.
func (d *Dispatcher) maybeSnapshotLocked() {
	if d.wal == nil || d.snapBusy || d.snapEvery < 0 || d.closed {
		return
	}
	if d.wal.Appends()-d.snapMark < d.snapEvery {
		return
	}
	d.snapBusy = true
	d.snapWG.Add(1)
	go d.snapshot()
}

// snapshot rotates the journal and writes a snapshot at the cut. The
// rotation runs under d.mu so the captured state is exactly the journal
// prefix below the cut; the (slower) snapshot write happens unlocked.
func (d *Dispatcher) snapshot() {
	defer d.snapWG.Done()
	d.mu.Lock()
	cut, err := d.wal.Rotate()
	if err != nil {
		d.snapBusy = false
		d.mu.Unlock()
		d.logf("dispatch: journal rotate failed: %v", err)
		return
	}
	st := d.captureLocked()
	mark := d.wal.Appends()
	d.mu.Unlock()

	start := time.Now()
	err = d.wal.WriteSnapshot(cut, st)
	dur := time.Since(start)
	d.mu.Lock()
	d.snapBusy = false
	d.snapMark = mark
	d.mu.Unlock()
	if err != nil {
		d.logf("dispatch: snapshot failed: %v", err)
		return
	}
	d.reg.Counter("falkon_wal_snapshots_total").Inc()
	d.reg.Gauge("falkon_wal_snapshot_unixtime").Set(time.Now().Unix())
	d.reg.Histogram("falkon_wal_snapshot_seconds").Observe(dur.Seconds())
	d.logf("dispatch: journal snapshot %d (%d pending, %d instances) in %v", cut, len(st.Pending), len(st.Instances), dur)
}

// Addr returns the bound address.
func (d *Dispatcher) Addr() string { return d.srv.Addr() }

// Close shuts the dispatcher down. With a journal, every buffered record
// is flushed and fsynced before Close returns — a clean shutdown seals the
// journal.
func (d *Dispatcher) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	d.drained.Broadcast() // release any Drain blocked on a dead system
	if d.sweeperStop != nil {
		close(d.sweeperStop)
		<-d.sweeperDone
	}
	err := d.srv.Close()
	d.eng.close()
	if d.wal != nil {
		d.snapWG.Wait()
		if werr := d.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// Abort simulates a crash for tests: the transport drops and the journal
// is abandoned without flushing its in-memory batch — only records the
// committer already wrote survive, the same post-condition as a kill -9.
func (d *Dispatcher) Abort() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	d.mu.Unlock()
	d.drained.Broadcast()
	if d.sweeperStop != nil {
		close(d.sweeperStop)
		<-d.sweeperDone
	}
	d.srv.Close()
	d.eng.close()
	if d.wal != nil {
		d.snapWG.Wait()
		d.wal.Abort()
	}
}

// notifyLocked runs the core's notify pass and snapshots each notification
// into f while still holding d.mu (the live *sched.Exec must not escape the
// critical section — concurrent handlers mutate it).
func (d *Dispatcher) notifyLocked(f *fx, now time.Duration) {
	for _, n := range d.core.Notifications(now) {
		f.notifies = append(f.notifies, notifyPush{
			peer:   n.Exec.Ref.(*execRef).peer,
			exec:   n.Exec.ID,
			at:     n.Exec.LastNotifyAt,
			queued: n.Queued,
		})
	}
}

// wakeDrainLocked wakes blocked Drain calls once the system is empty.
// Callers hold d.mu and have just removed work from the queue or the
// outstanding table.
func (d *Dispatcher) wakeDrainLocked() {
	if d.draining && d.core.Empty() {
		d.drained.Broadcast()
	}
}

// Drain puts the dispatcher into drain mode: new submissions are rejected
// while queued and in-flight tasks complete. It returns once the system is
// empty or the timeout expires (0 = wait forever), reporting whether the
// drain finished. The wait is event-driven: handlers broadcast on the
// queue-empty ∧ outstanding-empty transition, so Drain wakes as the last
// result arrives rather than on a poll tick.
func (d *Dispatcher) Drain(timeout time.Duration) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.draining = true
	timedOut := false
	if timeout > 0 {
		t := time.AfterFunc(timeout, func() {
			d.mu.Lock()
			timedOut = true
			d.mu.Unlock()
			d.drained.Broadcast()
		})
		defer t.Stop()
	}
	for !d.core.Empty() {
		if timedOut {
			return false
		}
		if d.closed {
			return d.core.Empty()
		}
		d.drained.Wait()
	}
	return true
}

// Stats snapshots dispatcher state (also served as an RPC for remote
// provisioners).
func (d *Dispatcher) Stats() fproto.StatsReply {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statsLocked()
}

// Metrics returns the dispatcher's metric registry (for mounting a debug
// HTTP endpoint or registering additional instruments).
func (d *Dispatcher) Metrics() *obs.Registry { return d.reg }

// Tracer returns the task-lifecycle event ring.
func (d *Dispatcher) Tracer() *obs.Tracer { return d.tracer }

// SpanHeader describes the dispatcher's span dump for offline merging. The
// dispatcher is the reference clock of the corrected timeline, so its
// offset is zero by definition.
func (d *Dispatcher) SpanHeader() obs.DumpHeader {
	return obs.DumpHeader{Proc: "dispatcher", EpochUnixNano: d.epoch.UnixNano()}
}

// MetricsSnapshot captures the full registry plus live queue/executor
// gauges and lifecycle counters — the falkon.metrics RPC body.
func (d *Dispatcher) MetricsSnapshot() obs.MetricsSnapshot {
	d.mu.Lock()
	st := d.statsLocked()
	d.mu.Unlock()
	d.reg.Gauge("falkon_queue_depth").Set(int64(st.Queued))
	d.reg.Gauge("falkon_outstanding_tasks").Set(int64(st.Outstanding))
	d.reg.Gauge("falkon_instances").Set(int64(st.Instances))
	d.reg.Gauge(obs.Labeled("falkon_executors", "state", "idle")).Set(int64(st.IdleExecutors))
	d.reg.Gauge(obs.Labeled("falkon_executors", "state", "busy")).Set(int64(st.BusyExecutors))
	s := d.reg.Snapshot()
	// Lifecycle counters live in the scheduling core rather than in the
	// registry, so fold them into the snapshot here.
	s.Counters["falkon_tasks_submitted_total"] = st.Submitted
	s.Counters["falkon_tasks_completed_total"] = st.Completed
	s.Counters["falkon_tasks_failed_total"] = st.Failed
	s.Counters["falkon_tasks_retried_total"] = st.Retried
	s.Counters["falkon_tasks_dispatched_total"] = st.Dispatched
	s.Counters["falkon_duplicate_deliveries_total"] = st.Duplicates
	return s
}

func (d *Dispatcher) statsLocked() fproto.StatsReply {
	ct := d.core.Counters
	st := fproto.StatsReply{
		Queued:       d.core.QueueLen(),
		Outstanding:  d.core.OutstandingLen(),
		Submitted:    ct.Submitted,
		Completed:    ct.Completed,
		Failed:       ct.Failed,
		Retried:      ct.Retried,
		Dispatched:   ct.Dispatched,
		Duplicates:   ct.Duplicates,
		Instances:    len(d.instances),
		CacheHits:    ct.CacheHits,
		CacheMisses:  ct.CacheMisses,
		NotifyErrors: d.eng.errs.Value(),
	}
	total, busy := d.core.ExecStats()
	st.TotalExecutors = total
	st.BusyExecutors = busy
	st.IdleExecutors = total - busy
	if d.wal != nil {
		st.Journal = true
		st.JournalAppends = d.wal.Appends()
		st.JournalFsyncs = d.wal.Fsyncs()
		st.RecoveredTasks = d.recoveredTasks
	}
	return st
}

// onDisconnect requeues work from dropped executors and detaches dropped
// client instances so their results buffer instead of being pushed into a
// dead connection (they flush when the client re-attaches).
func (d *Dispatcher) onDisconnect(p *wsrpc.Peer) {
	meta, _ := p.Meta().(string)
	if meta == "" {
		// Client connections carry no meta; detach any instances bound to
		// this peer.
		d.mu.Lock()
		for _, inst := range d.instances {
			if inst.peer == p {
				inst.peer = nil
			}
		}
		d.mu.Unlock()
		return
	}
	f := getFx()
	defer putFx(f)
	d.mu.Lock()
	ex, ok := d.core.Exec(meta)
	if !ok || ex.Ref.(*execRef).peer != p {
		d.mu.Unlock()
		return // a newer connection re-registered the id
	}
	_, dropped := d.core.DropExecutor(meta)
	for _, o := range dropped {
		d.replayLocked(f, o, fmt.Sprintf("executor %s disconnected", meta))
	}
	if len(dropped) > 0 {
		d.notifyLocked(f, d.now())
	}
	d.wakeDrainLocked()
	d.mu.Unlock()
	if len(dropped) > 0 {
		d.logf("dispatch: executor %s dropped with %d tasks in flight", meta, len(dropped))
	}
	d.flush(f)
}

// replayLocked applies the replay policy to an orphaned attempt: the core
// requeues it while retries remain, otherwise the task is finalized
// failed. Callers hold d.mu.
func (d *Dispatcher) replayLocked(f *fx, o *sched.Outstanding[string, outKey, taskRef], reason string) {
	if d.core.Requeue(o.Item) {
		f.trace(d.now(), obs.EvRetried, o.Item.X.t.Trace, o.Item.X.t.ID, o.Item.X.epr, o.Executor)
		return
	}
	d.finalizeLocked(f, o.Item.X.epr, task.Result{
		ID:           o.Item.X.t.ID,
		Trace:        o.Item.X.t.Trace,
		Err:          "retries exhausted: " + reason,
		ExitCode:     -1,
		QueuedAt:     o.Item.QueuedAt,
		DispatchedAt: o.DispatchedAt,
		StartedAt:    d.now(),
		FinishedAt:   d.now(),
		Attempts:     o.Item.Attempts,
	})
}

// assignLocked pops up to max tasks for executor ex, recording them as
// outstanding. It returns the protocol assignments. piggy marks
// assignments riding a deliver acknowledgment rather than a work pull.
func (d *Dispatcher) assignLocked(f *fx, ex *sched.Exec[string], max int, piggy bool) []fproto.Assignment {
	if max <= 0 {
		max = 1
	}
	kind := obs.EvPulled
	if piggy {
		kind = obs.EvAcked
	}
	var as []fproto.Assignment
	now := d.now()
	for len(as) < max {
		it, hit, ok := d.core.Pick(ex)
		if !ok {
			break
		}
		if inst, ok := d.instances[it.X.epr]; !ok || inst.destroyed {
			continue // instance destroyed while queued
		}
		d.core.Assign(now, ex, outKey{it.X.epr, it.X.t.ID}, it)
		if d.wal != nil {
			// Advisory record: recovery uses it to restore attempt counts.
			d.wal.Append(wal.KindDispatch, wal.DispatchRec{EPR: it.X.epr, ID: it.X.t.ID, Exec: ex.ID})
		}
		f.trace(now, kind, it.X.t.Trace, it.X.t.ID, it.X.epr, ex.ID)
		as = append(as, fproto.Assignment{EPR: it.X.epr, Task: it.X.t, CacheHit: hit})
	}
	return as
}

// finalizeLocked delivers a finished result to its instance (push or
// buffer). Callers hold d.mu; the push itself is deferred into f.
func (d *Dispatcher) finalizeLocked(f *fx, epr string, r task.Result) {
	if d.wal != nil {
		// Logged with the payload so undelivered results survive a crash
		// and are redelivered on recovery (clients dedupe by task ID).
		d.wal.Append(wal.KindComplete, wal.CompleteRec{EPR: epr, Result: r})
	}
	if r.Failed() {
		d.core.Counters.Failed++
		f.trace(d.now(), obs.EvFailed, r.Trace, r.ID, epr, r.ExecutorID)
	} else {
		d.core.Counters.Completed++
	}
	inst, ok := d.instances[epr]
	if !ok || inst.destroyed {
		return
	}
	inst.inFlight--
	if inst.notify && inst.peer != nil {
		if inst.live != nil {
			delete(inst.live, r.ID) // pushed: delivery obligation discharged
		}
		f.pushes = append(f.pushes, resultPush{peer: inst.peer, epr: epr, r: r})
		return
	}
	inst.addResult(r)
}

// sweeper periodically applies the timeout half of the replay policy.
func (d *Dispatcher) sweeper() {
	defer close(d.sweeperDone)
	interval := d.opts.ReplayTimeout / 2
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-d.sweeperStop:
			return
		case <-tick.C:
		}
		cutoff := d.now() - d.opts.ReplayTimeout
		var f fx
		d.mu.Lock()
		expired := d.core.Expire(cutoff)
		for _, o := range expired {
			d.replayLocked(&f, o, "replay timeout")
		}
		if len(expired) > 0 {
			d.notifyLocked(&f, d.now())
		}
		d.wakeDrainLocked()
		d.mu.Unlock()
		if len(expired) > 0 {
			d.logf("dispatch: replayed %d timed-out tasks", len(expired))
		}
		d.flush(&f)
	}
}
