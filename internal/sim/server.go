package sim

import (
	"fmt"
	"time"
)

// Server models a serial resource (for example one dispatcher CPU): jobs
// submitted to it are served FIFO, one at a time, each occupying the server
// for its service duration. The paper's throughput ceilings — 487 dispatches
// per second through one dispatcher, 500 WS calls per second through a GT4
// container — are expressed as servers whose per-job service time is the
// reciprocal rate.
type Server struct {
	e       *Engine
	name    string
	busy    bool
	queue   []serverJob
	served  uint64
	busyFor time.Duration // accumulated busy time, for utilization
}

type serverJob struct {
	service time.Duration
	done    func()
}

// NewServer creates an idle server.
func NewServer(e *Engine, name string) *Server {
	return &Server{e: e, name: name}
}

// Submit enqueues a job that occupies the server for service, then invokes
// done (which may be nil).
func (s *Server) Submit(service time.Duration, done func()) {
	if service < 0 {
		panic(fmt.Sprintf("sim: server %q negative service %v", s.name, service))
	}
	s.queue = append(s.queue, serverJob{service: service, done: done})
	if !s.busy {
		s.startNext()
	}
}

// startNext begins serving the queue head.
func (s *Server) startNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.busyFor += job.service
	s.e.After(job.service, func() {
		s.served++
		if job.done != nil {
			job.done()
		}
		s.startNext()
	})
}

// QueueLen returns the number of jobs waiting (not counting the one in
// service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Busy reports whether a job is currently in service.
func (s *Server) Busy() bool { return s.busy }

// Served returns the number of completed jobs.
func (s *Server) Served() uint64 { return s.served }

// BusyTime returns the total time the server has spent (or is committed to
// spend) serving jobs.
func (s *Server) BusyTime() time.Duration { return s.busyFor }

// Utilization returns busy time divided by elapsed virtual time (0 when no
// time has elapsed).
func (s *Server) Utilization() float64 {
	if s.e.Now() <= 0 {
		return 0
	}
	u := s.busyFor.Seconds() / s.e.Now().Seconds()
	if u > 1 {
		u = 1
	}
	return u
}
