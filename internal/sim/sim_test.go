package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimestampOrder(t *testing.T) {
	e := New(1)
	var got []int
	e.At(3*time.Second, func() { got = append(got, 3) })
	e.At(1*time.Second, func() { got = append(got, 1) })
	e.At(2*time.Second, func() { got = append(got, 2) })
	end := e.Run()
	if end != 3*time.Second {
		t.Fatalf("end = %v, want 3s", end)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineFIFOAmongEqualTimestamps(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(time.Second, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("equal-timestamp order = %v, want FIFO", got)
		}
	}
}

func TestEngineEventsScheduleMoreEvents(t *testing.T) {
	e := New(1)
	count := 0
	var step func()
	step = func() {
		count++
		if count < 5 {
			e.After(time.Second, step)
		}
	}
	e.After(time.Second, step)
	end := e.Run()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if end != 5*time.Second {
		t.Fatalf("end = %v, want 5s", end)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := New(1)
	e.At(10*time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*time.Second, func() {})
	})
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(1*time.Second, func() { fired++ })
	e.At(10*time.Second, func() { fired++ })
	now := e.RunUntil(5 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if now != 5*time.Second {
		t.Fatalf("now = %v, want 5s", now)
	}
	// Resuming runs the remaining event.
	e.Run()
	if fired != 2 {
		t.Fatalf("after resume fired = %d, want 2", fired)
	}
}

func TestTimerStopCancelsEvent(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop returned false for pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
}

func TestEngineStopHaltsRun(t *testing.T) {
	e := New(1)
	fired := 0
	e.At(1*time.Second, func() { fired++; e.Stop() })
	e.At(2*time.Second, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt)", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestTickerRunsUntilFalse(t *testing.T) {
	e := New(1)
	ticks := 0
	e.Every(time.Second, func() bool {
		ticks++
		return ticks < 3
	})
	end := e.Run()
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3", ticks)
	}
	if end != 3*time.Second {
		t.Fatalf("end = %v, want 3s", end)
	}
}

func TestTickerStop(t *testing.T) {
	e := New(1)
	ticks := 0
	var tk *Ticker
	tk = e.Every(time.Second, func() bool {
		ticks++
		if ticks == 2 {
			tk.Stop()
		}
		return true
	})
	e.Run()
	if ticks != 2 {
		t.Fatalf("ticks = %d, want 2", ticks)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		e := New(42)
		var out []time.Duration
		for i := 0; i < 100; i++ {
			d := e.UniformDuration(0, time.Minute)
			e.At(d, func() { out = append(out, e.Now()) })
		}
		e.Run()
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUniformDurationBounds(t *testing.T) {
	e := New(7)
	lo, hi := 5*time.Second, 65*time.Second
	for i := 0; i < 1000; i++ {
		d := e.UniformDuration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("UniformDuration(%v,%v) = %v out of range", lo, hi, d)
		}
	}
	if d := e.UniformDuration(lo, lo); d != lo {
		t.Fatalf("degenerate range returned %v, want %v", d, lo)
	}
}

func TestExpDurationMean(t *testing.T) {
	e := New(9)
	mean := time.Second
	var sum time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		sum += e.ExpDuration(mean)
	}
	got := sum.Seconds() / n
	if got < 0.95 || got > 1.05 {
		t.Fatalf("empirical mean = %.3fs, want ~1s", got)
	}
	if e.ExpDuration(0) != 0 {
		t.Fatal("ExpDuration(0) != 0")
	}
}

// Property: for any batch of event delays, the engine visits them in sorted
// order and ends at the max delay.
func TestEventOrderProperty(t *testing.T) {
	prop := func(delays []uint16) bool {
		e := New(3)
		var visited []time.Duration
		var max time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			if at > max {
				max = at
			}
			e.At(at, func() { visited = append(visited, e.Now()) })
		}
		e.Run()
		if len(visited) != len(delays) {
			return false
		}
		for i := 1; i < len(visited); i++ {
			if visited[i] < visited[i-1] {
				return false
			}
		}
		return len(delays) == 0 || e.Now() == max
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializesJobs(t *testing.T) {
	e := New(1)
	s := NewServer(e, "cpu")
	var done []time.Duration
	for i := 0; i < 4; i++ {
		s.Submit(time.Second, func() { done = append(done, e.Now()) })
	}
	e.Run()
	want := []time.Duration{1 * time.Second, 2 * time.Second, 3 * time.Second, 4 * time.Second}
	if len(done) != len(want) {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done[%d] = %v, want %v", i, done[i], want[i])
		}
	}
	if s.Served() != 4 {
		t.Fatalf("served = %d, want 4", s.Served())
	}
}

func TestServerThroughputMatchesServiceRate(t *testing.T) {
	// A server with 1/487 s service time should complete ~487 jobs per
	// virtual second — the paper's dispatcher ceiling.
	e := New(1)
	s := NewServer(e, "dispatcher")
	service := time.Second / 487
	const n = 4870
	for i := 0; i < n; i++ {
		s.Submit(service, nil)
	}
	end := e.Run()
	rate := float64(n) / end.Seconds()
	if rate < 480 || rate > 495 {
		t.Fatalf("rate = %.1f jobs/s, want ~487", rate)
	}
}

func TestServerUtilization(t *testing.T) {
	e := New(1)
	s := NewServer(e, "cpu")
	s.Submit(time.Second, nil)
	e.At(4*time.Second, func() {}) // let idle time elapse
	e.Run()
	if u := s.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization = %.3f, want 0.25", u)
	}
}

func TestServerLateSubmission(t *testing.T) {
	e := New(1)
	s := NewServer(e, "cpu")
	var finished time.Duration
	e.At(10*time.Second, func() {
		s.Submit(2*time.Second, func() { finished = e.Now() })
	})
	e.Run()
	if finished != 12*time.Second {
		t.Fatalf("finished = %v, want 12s", finished)
	}
	if s.QueueLen() != 0 || s.Busy() {
		t.Fatal("server not idle at end")
	}
}
