// Package sim implements a deterministic discrete-event simulation engine
// with a virtual clock. The long-running Falkon experiments — the 2-million
// task endurance run (Figure 8), the 54,000-executor scalability run
// (Figure 9), and the provisioning study on the 18-stage synthetic workload
// (Tables 3–4, Figures 11–13) — execute on this engine so that hours of
// virtual time replay in seconds of wall-clock time, with fully reproducible
// results.
//
// The engine is single-threaded: event callbacks run sequentially in
// timestamp order (FIFO among equal timestamps) and may schedule further
// events. Models built on the engine therefore need no locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// event is one scheduled callback.
type event struct {
	at  time.Duration
	seq uint64 // insertion order; breaks timestamp ties FIFO
	fn  func()

	// index is maintained by the heap for cancellation.
	index int
}

// eventHeap orders events by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// New.
type Engine struct {
	now     time.Duration
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// processed counts executed events, mostly for tests and sanity
	// assertions on runaway models.
	processed uint64
}

// New returns an engine whose clock starts at zero, with a deterministic
// RNG seeded by seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic RNG stream.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.events) }

// Timer handles allow cancelling a scheduled event.
type Timer struct {
	e  *Engine
	ev *event
}

// Stop cancels the timer if it has not fired; it reports whether the timer
// was still pending.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.index < 0 {
		return false
	}
	heap.Remove(&t.e.events, t.ev.index)
	t.ev = nil
	return true
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// panics: models that do so are buggy.
func (e *Engine) At(at time.Duration, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event callback")
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return &Timer{e: e, ev: ev}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until none remain or Stop is called. It returns the
// final virtual time.
func (e *Engine) Run() time.Duration { return e.RunUntil(-1) }

// RunUntil executes events with timestamps <= deadline (deadline < 0 means
// run to exhaustion). The clock never advances past an executed event's
// timestamp; when the deadline cuts execution short the clock is left at the
// deadline.
func (e *Engine) RunUntil(deadline time.Duration) time.Duration {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		next := e.events[0]
		if deadline >= 0 && next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.processed++
		next.fn()
	}
	if deadline >= 0 && e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// Ticker invokes fn every interval until fn returns false or the ticker is
// stopped. The first invocation happens one interval from now.
type Ticker struct {
	timer   *Timer
	stopped bool
}

// Every creates and starts a ticker.
func (e *Engine) Every(interval time.Duration, fn func() bool) *Ticker {
	if interval <= 0 {
		panic(fmt.Sprintf("sim: non-positive tick interval %v", interval))
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		if !fn() {
			t.stopped = true
			return
		}
		t.timer = e.After(interval, tick)
	}
	t.timer = e.After(interval, tick)
	return t
}

// Stop halts the ticker.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// UniformDuration draws a duration uniformly from [lo, hi].
func (e *Engine) UniformDuration(lo, hi time.Duration) time.Duration {
	if hi < lo {
		panic(fmt.Sprintf("sim: invalid uniform range [%v, %v]", lo, hi))
	}
	if hi == lo {
		return lo
	}
	return lo + time.Duration(e.rng.Int63n(int64(hi-lo)+1))
}

// ExpDuration draws an exponentially distributed duration with the given
// mean. Used for jittered service times.
func (e *Engine) ExpDuration(mean time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	return time.Duration(e.rng.ExpFloat64() * float64(mean))
}
