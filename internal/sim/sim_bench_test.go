package sim

import (
	"testing"
	"time"
)

// BenchmarkEngineEventThroughput measures raw event processing — the
// substrate cost under the 2M-task endurance run (~10M events).
func BenchmarkEngineEventThroughput(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	var chain func()
	n := 0
	chain = func() {
		n++
		if n < b.N {
			e.After(time.Microsecond, chain)
		}
	}
	b.ResetTimer()
	e.After(time.Microsecond, chain)
	e.Run()
	if n != b.N {
		b.Fatalf("processed %d of %d", n, b.N)
	}
}

// BenchmarkEngineHeapChurn measures scheduling with many pending events.
func BenchmarkEngineHeapChurn(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	// Keep ~10K events pending while processing b.N.
	const pending = 10000
	for i := 0; i < pending; i++ {
		e.At(time.Duration(i)*time.Millisecond, func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+time.Duration(i%pending)*time.Millisecond, func() {})
	}
	e.Run()
}

// BenchmarkServer measures the serial-resource primitive.
func BenchmarkServer(b *testing.B) {
	b.ReportAllocs()
	e := New(1)
	s := NewServer(e, "cpu")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Submit(time.Microsecond, nil)
	}
	e.Run()
}
