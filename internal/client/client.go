// Package client implements the Falkon client library: it creates a
// dispatcher instance (factory/instance pattern), submits tasks with
// client-dispatcher bundling, and collects results either through pushed
// notifications (message {8} of Figure 2) or by polling.
package client

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"falkon/internal/fproto"
	"falkon/internal/task"
	"falkon/internal/wsrpc"
)

// Options configures Connect.
type Options struct {
	// DispatcherAddr is the dispatcher's wsrpc address.
	DispatcherAddr string
	// Name labels the client in dispatcher logs.
	Name string
	// Security and PSK must match the dispatcher.
	Security wsrpc.SecurityProfile
	PSK      []byte
	// BundleSize groups submissions into bundles of this many tasks
	// (default 1 = no bundling). Figure 5 sweeps this parameter.
	BundleSize int
	// Poll disables pushed result notifications in favour of Collect
	// polling (the firewall-friendly mode of §6).
	Poll bool
	// PollInterval is the Collect long-poll wait when Poll is set
	// (default 50 ms).
	PollInterval time.Duration
}

// Client is a connected Falkon client owning one dispatcher instance.
type Client struct {
	opts Options
	cli  *wsrpc.Client
	epr  string

	mu        sync.Mutex
	submitted int64
	received  int64
	results   chan task.Result
	closed    bool

	pollStop chan struct{}
	pollDone chan struct{}
}

// Connect dials the dispatcher and creates a fresh instance.
func Connect(opts Options) (*Client, error) {
	if opts.BundleSize <= 0 {
		opts.BundleSize = 1
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	c := &Client{opts: opts, results: make(chan task.Result, 4096)}
	cli, err := wsrpc.Dial(opts.DispatcherAddr, wsrpc.ClientOptions{
		Security: opts.Security,
		PSK:      opts.PSK,
		OnNotify: c.onNotify,
	})
	if err != nil {
		return nil, err
	}
	c.cli = cli
	var reply fproto.CreateInstanceReply
	err = cli.Call(fproto.MethodCreateInstance, fproto.CreateInstanceRequest{
		ClientName:        opts.Name,
		WantNotifications: !opts.Poll,
	}, &reply)
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("client: create instance: %w", err)
	}
	c.epr = reply.EPR
	if opts.Poll {
		c.pollStop = make(chan struct{})
		c.pollDone = make(chan struct{})
		go c.pollLoop()
	}
	return c, nil
}

// EPR returns the instance endpoint reference.
func (c *Client) EPR() string { return c.epr }

// onNotify receives pushed results. It runs on the read loop; the results
// channel is buffered, and genuine backpressure falls back to a goroutine
// per overflow batch (rare).
func (c *Client) onNotify(method string, body json.RawMessage) {
	if method != fproto.NotifyResults {
		return
	}
	var n fproto.ResultsNotify
	if err := json.Unmarshal(body, &n); err != nil {
		return
	}
	c.deliver(n.Results)
}

// deliver pushes results to the channel, spilling to a goroutine if full so
// the transport read loop never stalls.
func (c *Client) deliver(rs []task.Result) {
	for i, r := range rs {
		select {
		case c.results <- r:
		default:
			rest := rs[i:]
			go func() {
				for _, r := range rest {
					c.results <- r
				}
			}()
			c.bumpReceived(len(rs))
			return
		}
	}
	c.bumpReceived(len(rs))
}

func (c *Client) bumpReceived(n int) {
	c.mu.Lock()
	c.received += int64(n)
	c.mu.Unlock()
}

// pollLoop drives Collect when notifications are disabled.
func (c *Client) pollLoop() {
	defer close(c.pollDone)
	for {
		select {
		case <-c.pollStop:
			return
		default:
		}
		var reply fproto.CollectReply
		err := c.cli.Call(fproto.MethodCollect, fproto.CollectRequest{
			EPR:        c.epr,
			WaitMillis: int(c.opts.PollInterval / time.Millisecond),
		}, &reply)
		if err != nil {
			return // connection gone
		}
		if len(reply.Results) > 0 {
			c.deliver(reply.Results)
		}
	}
}

// Submit sends tasks to the dispatcher in bundles of BundleSize.
func (c *Client) Submit(tasks []task.Task) error {
	for len(tasks) > 0 {
		n := c.opts.BundleSize
		if n > len(tasks) {
			n = len(tasks)
		}
		var reply fproto.SubmitReply
		err := c.cli.Call(fproto.MethodSubmit, fproto.SubmitRequest{EPR: c.epr, Tasks: tasks[:n]}, &reply)
		if err != nil {
			return fmt.Errorf("client: submit: %w", err)
		}
		if reply.Accepted != n {
			return fmt.Errorf("client: submitted %d tasks, dispatcher accepted %d", n, reply.Accepted)
		}
		c.mu.Lock()
		c.submitted += int64(n)
		c.mu.Unlock()
		tasks = tasks[n:]
	}
	return nil
}

// Results exposes the stream of finished task results.
func (c *Client) Results() <-chan task.Result { return c.results }

// WaitN blocks until n results arrive (cumulative across calls is not
// tracked; n results are read from the stream) or the timeout expires.
func (c *Client) WaitN(n int, timeout time.Duration) ([]task.Result, error) {
	out := make([]task.Result, 0, n)
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for len(out) < n {
		select {
		case r := <-c.results:
			out = append(out, r)
		case <-c.cli.Done():
			return out, fmt.Errorf("client: connection closed with %d/%d results", len(out), n)
		case <-deadline:
			return out, fmt.Errorf("client: timeout with %d/%d results", len(out), n)
		}
	}
	return out, nil
}

// Submitted returns the number of tasks submitted so far.
func (c *Client) Submitted() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.submitted }

// Stats fetches the dispatcher's state over the wire (the provisioner's
// {POLL} request, available to any client).
func (c *Client) Stats() (fproto.StatsReply, error) {
	var st fproto.StatsReply
	err := c.cli.Call(fproto.MethodStats, nil, &st)
	return st, err
}

// Metrics fetches the dispatcher's full instrument snapshot — counters,
// gauges, and stage/RPC latency histograms (falkon.metrics). Through a
// forwarder the reply is the merge of every downstream dispatcher.
func (c *Client) Metrics() (fproto.MetricsReply, error) {
	var ms fproto.MetricsReply
	err := c.cli.Call(fproto.MethodMetrics, nil, &ms)
	return ms, err
}

// Events fetches task-lifecycle trace events recorded after sinceSeq (0 for
// the oldest retained); max bounds the batch (0 = all retained). The reply's
// NextSeq tails the stream on a direct dispatcher connection; through a
// forwarder it is 0 (pagination unavailable).
func (c *Client) Events(sinceSeq uint64, max int) (fproto.EventsReply, error) {
	var er fproto.EventsReply
	err := c.cli.Call(fproto.MethodEvents, fproto.EventsRequest{SinceSeq: sinceSeq, Max: max}, &er)
	return er, err
}

// Close destroys the instance and disconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.pollStop != nil {
		close(c.pollStop)
	}
	_ = c.cli.Call(fproto.MethodDestroyInstance, fproto.DestroyInstanceRequest{EPR: c.epr}, nil)
	err := c.cli.Close()
	if c.pollDone != nil {
		<-c.pollDone
	}
	return err
}
