// Package client implements the Falkon client library: it creates a
// dispatcher instance (factory/instance pattern), submits tasks with
// client-dispatcher bundling, and collects results either through pushed
// notifications (message {8} of Figure 2) or by polling.
//
// With Reconnect enabled the client also rides out dispatcher restarts:
// it redials with jittered backoff, re-attaches to its instance (which a
// journaling dispatcher recovers from disk), idempotently resubmits every
// task still awaiting a result, and dedupes redelivered results by task
// ID — so the application sees each result exactly once no matter how
// many times the dispatcher crashed in between.
package client

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"falkon/internal/backoff"
	"falkon/internal/fproto"
	"falkon/internal/task"
	"falkon/internal/wsrpc"
)

// Options configures Connect.
type Options struct {
	// DispatcherAddr is the dispatcher's wsrpc address, or a comma-separated
	// chain of addresses tried in order ("leaf:5001,root:5000"): in a
	// hierarchical tree the client attaches to its leaf and fails over to
	// the next address in the chain — typically the root — when the leaf
	// dies. Failing over to a dispatcher that doesn't know the instance
	// falls back to a fresh instance plus resubmission of owed tasks, the
	// same path as a journal-less restart.
	DispatcherAddr string
	// Name labels the client in dispatcher logs.
	Name string
	// Tenant names the tenant this client's instance belongs to ("" =
	// the dispatcher's default tenant). Against a multi-tenant dispatcher
	// the tenant determines fair-share weight, quota, and rate limit; a
	// pre-tenancy dispatcher ignores the field.
	Tenant string
	// Security and PSK must match the dispatcher.
	Security wsrpc.SecurityProfile
	PSK      []byte
	// BundleSize groups submissions into bundles of this many tasks
	// (default 1 = no bundling). Figure 5 sweeps this parameter.
	BundleSize int
	// Poll disables pushed result notifications in favour of Collect
	// polling (the firewall-friendly mode of §6).
	Poll bool
	// PollInterval is the Collect long-poll wait when Poll is set
	// (default 50 ms).
	PollInterval time.Duration

	// Reconnect enables crash-safe operation: on a dropped connection the
	// client redials with jittered backoff, re-attaches to its instance,
	// resubmits tasks still awaiting results (the dispatcher dedupes ones
	// it already holds), and drops duplicate redeliveries by task ID.
	Reconnect bool
	// ReconnectTimeout bounds one continuous outage (default 30s); past it
	// the client gives up and Submit/WaitN fail.
	ReconnectTimeout time.Duration
	// Backoff tunes the redial schedule (zero value = backoff.Default).
	Backoff backoff.Policy

	// Faults, when set, interposes transport fault injection on every
	// dial (chaos testing only).
	Faults wsrpc.ConnFaults
}

// Client is a connected Falkon client owning one dispatcher instance.
type Client struct {
	opts Options

	// addrs is the parsed DispatcherAddr chain; addrIdx (under mu) is the
	// element the live connection used, where redials start. eprIdx is the
	// address the current instance was created on — EPRs are per-dispatcher,
	// so a reconnect that lands elsewhere must not reattach by EPR (the same
	// name could be a stranger's instance there) and starts fresh instead.
	addrs   []string
	addrIdx int
	eprIdx  int

	// cluster is the HA cluster id the dispatcher reported at create time
	// ("" for a standalone dispatcher). Within a cluster the EPR is valid
	// on every member — standbys replay the leader's journal — so a
	// failover to another address in the chain reattaches by EPR (scoped by
	// the cluster id) instead of abandoning the instance.
	cluster string

	// traceBase is the random per-client base trace IDs are derived from:
	// a task's trace is traceBase + its ID, so the mapping is stable across
	// resubmission and unique across concurrent clients with overwhelming
	// probability.
	traceBase uint64

	mu   sync.Mutex
	cond *sync.Cond // broadcast on reconnect, close, and death
	cli  *wsrpc.Client
	epr  string
	gen  int // connection generation, bumped on every successful reconnect

	submitted  int64
	received   int64
	deduped    int64 // resubmitted tasks the dispatcher already held
	dupDrops   int64 // redelivered results dropped client-side
	reconnects int64
	throttled  int64 // bundles the dispatcher deferred with retry-after

	// pending tracks acknowledged tasks still awaiting results; done holds
	// every delivered result ID. Both exist only in Reconnect mode:
	// pending drives resubmission, done drives exactly-once delivery.
	pending map[task.ID]task.Task
	done    map[task.ID]struct{}

	closed  bool
	dead    bool
	deadErr error

	results  chan task.Result
	closedCh chan struct{}
	deadCh   chan struct{}

	pollStop chan struct{}
	pollDone chan struct{}
}

// Connect dials the dispatcher and creates a fresh instance.
func Connect(opts Options) (*Client, error) {
	if opts.BundleSize <= 0 {
		opts.BundleSize = 1
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	if opts.ReconnectTimeout <= 0 {
		opts.ReconnectTimeout = 30 * time.Second
	}
	c := &Client{
		opts:      opts,
		addrs:     fproto.SplitAddrs(opts.DispatcherAddr),
		traceBase: randTraceBase(),
		results:   make(chan task.Result, 4096),
		closedCh:  make(chan struct{}),
		deadCh:    make(chan struct{}),
	}
	if len(c.addrs) == 0 {
		return nil, fmt.Errorf("client: no dispatcher address")
	}
	c.cond = sync.NewCond(&c.mu)
	if opts.Reconnect {
		c.pending = make(map[task.ID]task.Task)
		c.done = make(map[task.ID]struct{})
	}
	cli, err := c.dial()
	if err != nil {
		return nil, err
	}
	var reply fproto.CreateInstanceReply
	err = cli.Call(fproto.MethodCreateInstance, fproto.CreateInstanceRequest{
		ClientName:        opts.Name,
		WantNotifications: !opts.Poll,
		Tenant:            opts.Tenant,
	}, &reply)
	if err != nil {
		cli.Close()
		return nil, fmt.Errorf("client: create instance: %w", err)
	}
	c.cli = cli
	c.epr = reply.EPR
	c.eprIdx = c.addrIdx
	c.cluster = reply.Cluster
	go c.supervise(cli)
	if opts.Poll {
		c.pollStop = make(chan struct{})
		c.pollDone = make(chan struct{})
		go c.pollLoop()
	}
	return c, nil
}

// randTraceBase draws the per-client trace-ID base. A failed read falls
// back to the wall clock — uniqueness degrades, tracing still works.
func randTraceBase() uint64 {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return uint64(time.Now().UnixNano())
	}
	return binary.LittleEndian.Uint64(b[:])
}

// dial connects to the first reachable address in the chain, starting at
// the one the previous connection used: a blip redials the same dispatcher
// (preserving the instance), a dead leaf rotates to the fallback.
func (c *Client) dial() (*wsrpc.Client, error) {
	c.mu.Lock()
	start := c.addrIdx
	c.mu.Unlock()
	var firstErr error
	for i := 0; i < len(c.addrs); i++ {
		idx := (start + i) % len(c.addrs)
		cli, err := wsrpc.Dial(c.addrs[idx], wsrpc.ClientOptions{
			Security: c.opts.Security,
			PSK:      c.opts.PSK,
			OnNotify: c.onNotify,
			Faults:   c.opts.Faults,
		})
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		c.mu.Lock()
		c.addrIdx = idx
		c.mu.Unlock()
		return cli, nil
	}
	return nil, firstErr
}

// EPR returns the instance endpoint reference.
func (c *Client) EPR() string { c.mu.Lock(); defer c.mu.Unlock(); return c.epr }

// conn returns the live connection and its generation.
func (c *Client) conn() (*wsrpc.Client, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, fmt.Errorf("client: closed")
	}
	if c.dead {
		return nil, 0, fmt.Errorf("client: connection lost: %w", c.deadErr)
	}
	return c.cli, c.gen, nil
}

// awaitReconnect blocks until the connection generation moves past gen.
// false means the client closed or gave up instead.
func (c *Client) awaitReconnect(gen int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.gen == gen && !c.closed && !c.dead {
		c.cond.Wait()
	}
	return !c.closed && !c.dead
}

func (c *Client) markDead(err error) {
	c.mu.Lock()
	if !c.dead && !c.closed {
		c.dead = true
		c.deadErr = err
		close(c.deadCh)
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// supervise watches the current connection and, in Reconnect mode,
// replaces it when it drops: redial with jittered backoff, re-attach to
// the instance (a journaling dispatcher recovers it across restarts; on an
// unknown EPR fall back to a fresh instance), resubmit every task still
// awaiting a result, and hand the new connection to the other goroutines.
func (c *Client) supervise(cli *wsrpc.Client) {
	for {
		select {
		case <-cli.Done():
		case <-c.closedCh:
			return
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		if !c.opts.Reconnect {
			c.markDead(wsrpc.ErrClientClosed)
			return
		}
		next, ok := c.reconnect()
		if !ok {
			return
		}
		cli = next
	}
}

// reconnect runs the backoff redial loop for one outage. It returns the
// new connection, or ok=false when the client closed or gave up.
func (c *Client) reconnect() (*wsrpc.Client, bool) {
	start := time.Now()
	sched := backoff.NewSchedule(c.opts.Backoff)
	for {
		select {
		case <-c.closedCh:
			return nil, false
		case <-time.After(sched.Next()):
		}
		if time.Since(start) > c.opts.ReconnectTimeout {
			c.markDead(fmt.Errorf("reconnect timed out after %v", c.opts.ReconnectTimeout))
			return nil, false
		}
		cli, err := c.dial()
		if err != nil {
			continue
		}
		c.mu.Lock()
		epr, name, poll := c.epr, c.opts.Name, c.opts.Poll
		cluster := c.cluster
		if c.addrIdx != c.eprIdx && cluster == "" {
			// Failed over to a standalone dispatcher: the EPR means nothing
			// (or worse) there. Within an HA cluster the EPR stays valid on
			// every member, so keep it and let the new leader replay it.
			epr = ""
		}
		c.mu.Unlock()
		var reply fproto.CreateInstanceReply
		err = cli.Call(fproto.MethodCreateInstance, fproto.CreateInstanceRequest{
			ClientName:        name,
			WantNotifications: !poll,
			EPR:               epr,
			Cluster:           cluster,
			Tenant:            c.opts.Tenant,
		}, &reply)
		var remote *wsrpc.RemoteError
		if errors.As(err, &remote) && epr != "" {
			// The dispatcher is up but doesn't know the instance (no journal,
			// or it was pruned): start fresh and resubmit everything.
			err = cli.Call(fproto.MethodCreateInstance, fproto.CreateInstanceRequest{
				ClientName:        name,
				WantNotifications: !poll,
				Tenant:            c.opts.Tenant,
			}, &reply)
		}
		if err != nil {
			cli.Close()
			continue
		}
		c.mu.Lock()
		c.cli = cli
		c.epr = reply.EPR
		c.eprIdx = c.addrIdx
		c.cluster = reply.Cluster
		c.gen++
		c.reconnects++
		resubmit := make([]task.Task, 0, len(c.pending))
		for _, t := range c.pending {
			resubmit = append(resubmit, t)
		}
		c.mu.Unlock()
		c.cond.Broadcast()
		// Idempotent resubmission: the dispatcher drops tasks it still
		// holds (reply.Deduped) and re-runs the ones that died with the
		// crash. Errors here just trigger another supervise round.
		if err := c.submitTasks(resubmit, true); err == nil {
			return cli, true
		}
		select {
		case <-cli.Done(): // connection died again mid-resubmit; retry
		default:
			return cli, true // submit rejected but connection is live
		}
	}
}

// onNotify receives pushed results. It runs on the read loop; the results
// channel is buffered, and genuine backpressure falls back to a goroutine
// per overflow batch (rare).
func (c *Client) onNotify(method string, body json.RawMessage) {
	if method != fproto.NotifyResults {
		return
	}
	var n fproto.ResultsNotify
	if err := json.Unmarshal(body, &n); err != nil {
		return
	}
	c.deliver(n.Results)
}

// deliver pushes results to the channel, spilling to a goroutine if full so
// the transport read loop never stalls. In Reconnect mode it first drops
// results already delivered once — redeliveries are expected after a
// crash (the journal redelivers anything not provably collected) and after
// resubmission races, and this filter is what makes delivery exactly-once.
func (c *Client) deliver(rs []task.Result) {
	if c.done != nil {
		c.mu.Lock()
		fresh := rs[:0:0]
		for _, r := range rs {
			if _, dup := c.done[r.ID]; dup {
				c.dupDrops++
				continue
			}
			c.done[r.ID] = struct{}{}
			delete(c.pending, r.ID)
			fresh = append(fresh, r)
		}
		c.received += int64(len(fresh))
		c.mu.Unlock()
		for _, r := range fresh {
			select {
			case c.results <- r:
			default:
				go blockingDeliver(c.results, r)
			}
		}
		return
	}
	for i, r := range rs {
		select {
		case c.results <- r:
		default:
			rest := rs[i:]
			go func() {
				for _, r := range rest {
					c.results <- r
				}
			}()
			c.bumpReceived(len(rs))
			return
		}
	}
	c.bumpReceived(len(rs))
}

func blockingDeliver(ch chan<- task.Result, r task.Result) { ch <- r }

func (c *Client) bumpReceived(n int) {
	c.mu.Lock()
	c.received += int64(n)
	c.mu.Unlock()
}

// pollLoop drives Collect when notifications are disabled. In Reconnect
// mode it survives connection swaps by waiting out each outage.
func (c *Client) pollLoop() {
	defer close(c.pollDone)
	for {
		select {
		case <-c.pollStop:
			return
		default:
		}
		cli, gen, err := c.conn()
		if err != nil {
			return
		}
		var reply fproto.CollectReply
		err = cli.Call(fproto.MethodCollect, fproto.CollectRequest{
			EPR:        c.EPR(),
			WaitMillis: int(c.opts.PollInterval / time.Millisecond),
		}, &reply)
		if err != nil {
			var remote *wsrpc.RemoteError
			if !c.opts.Reconnect || errors.As(err, &remote) {
				return
			}
			if !c.awaitReconnect(gen) {
				return
			}
			continue
		}
		if len(reply.Results) > 0 {
			c.deliver(reply.Results)
		}
	}
}

// Submit sends tasks to the dispatcher in bundles of BundleSize. With a
// journaling dispatcher the acknowledgment means the bundle is durable; in
// Reconnect mode a bundle interrupted by a connection drop is retried
// after the reconnect (the dispatcher dedupes tasks it already accepted).
//
// Submit assigns each task a trace ID (in the caller's slice, so callers
// can correlate with span dumps) unless one is already set; a resubmitted
// task keeps its original trace, so every attempt joins one timeline.
func (c *Client) Submit(tasks []task.Task) error {
	for i := range tasks {
		if tasks[i].Trace == 0 {
			tasks[i].Trace = c.traceBase + uint64(tasks[i].ID)
			if tasks[i].Trace == 0 {
				tasks[i].Trace = 1
			}
		}
	}
	return c.submitTasks(tasks, false)
}

// submitTasks bundles tasks over the current connection; resubmit marks
// the reconnect path, where failures bounce back to the supervisor instead
// of waiting here.
func (c *Client) submitTasks(tasks []task.Task, resubmit bool) error {
	for len(tasks) > 0 {
		n := c.opts.BundleSize
		if n > len(tasks) {
			n = len(tasks)
		}
		bundle := tasks[:n]
		var reply fproto.SubmitReply
		for {
			cli, gen, err := c.conn()
			if err != nil {
				return fmt.Errorf("client: submit: %w", err)
			}
			// The envelope carries the bundle head's trace so transport-level
			// tooling can follow the submission hop; per-task context rides in
			// the task bodies. Reset the reply each attempt: its fields are
			// omitempty on the wire, so a retried call must not inherit the
			// previous attempt's throttle hint.
			reply = fproto.SubmitReply{}
			err = cli.CallTrace(fproto.MethodSubmit, fproto.SubmitRequest{EPR: c.EPR(), Tasks: bundle}, &reply, bundle[0].Trace, 0)
			if err == nil {
				if reply.RetryAfterMillis > 0 {
					// Admission backpressure: the dispatcher deferred the whole
					// bundle (tenant quota or rate limit). Honor the hint with
					// jitter — throttled clients must not re-flood in lockstep —
					// then retry the same bundle.
					c.mu.Lock()
					c.throttled++
					c.mu.Unlock()
					wait := time.Duration(reply.RetryAfterMillis) * time.Millisecond
					wait += time.Duration(rand.Int63n(int64(wait)/4 + 1))
					select {
					case <-time.After(wait):
					case <-c.closedCh:
						return fmt.Errorf("client: closed while awaiting retry-after")
					}
					continue
				}
				break
			}
			var remote *wsrpc.RemoteError
			if resubmit || !c.opts.Reconnect || errors.As(err, &remote) {
				return fmt.Errorf("client: submit: %w", err)
			}
			// Connection-level failure: wait out the outage and retry this
			// bundle on the replacement connection. Tasks the dispatcher
			// already journaled before the crash come back Deduped.
			if !c.awaitReconnect(gen) {
				_, _, cerr := c.conn()
				return fmt.Errorf("client: submit: %w", cerr)
			}
		}
		if reply.Accepted != n {
			return fmt.Errorf("client: submitted %d tasks, dispatcher accepted %d", n, reply.Accepted)
		}
		c.mu.Lock()
		c.deduped += int64(reply.Deduped)
		if !resubmit {
			c.submitted += int64(n)
			if c.pending != nil {
				for _, t := range bundle {
					if _, delivered := c.done[t.ID]; !delivered {
						c.pending[t.ID] = t
					}
				}
			}
		}
		c.mu.Unlock()
		tasks = tasks[n:]
	}
	return nil
}

// Results exposes the stream of finished task results.
func (c *Client) Results() <-chan task.Result { return c.results }

// WaitN blocks until n results arrive (cumulative across calls is not
// tracked; n results are read from the stream) or the timeout expires. In
// Reconnect mode it keeps waiting across dispatcher restarts and only
// fails once the client closes or gives up reconnecting.
func (c *Client) WaitN(n int, timeout time.Duration) ([]task.Result, error) {
	out := make([]task.Result, 0, n)
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	for len(out) < n {
		select {
		case r := <-c.results:
			out = append(out, r)
		case <-c.deadCh:
			return out, fmt.Errorf("client: connection closed with %d/%d results", len(out), n)
		case <-c.closedCh:
			return out, fmt.Errorf("client: connection closed with %d/%d results", len(out), n)
		case <-deadline:
			return out, fmt.Errorf("client: timeout with %d/%d results", len(out), n)
		}
	}
	return out, nil
}

// Submitted returns the number of tasks submitted so far.
func (c *Client) Submitted() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.submitted }

// Reconnects counts successful reconnect+reattach cycles.
func (c *Client) Reconnects() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.reconnects }

// Throttled counts submit bundles the dispatcher deferred with a
// retry-after hint (tenant admission control) before eventually accepting.
func (c *Client) Throttled() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.throttled }

// Deduped counts resubmitted tasks the dispatcher already held (its side
// of the exactly-once story).
func (c *Client) Deduped() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.deduped }

// DuplicatesDropped counts redelivered results discarded client-side (this
// side of the exactly-once story).
func (c *Client) DuplicatesDropped() int64 { c.mu.Lock(); defer c.mu.Unlock(); return c.dupDrops }

// Stats fetches the dispatcher's state over the wire (the provisioner's
// {POLL} request, available to any client).
func (c *Client) Stats() (fproto.StatsReply, error) {
	cli, _, err := c.conn()
	if err != nil {
		return fproto.StatsReply{}, err
	}
	var st fproto.StatsReply
	err = cli.Call(fproto.MethodStats, nil, &st)
	return st, err
}

// Metrics fetches the dispatcher's full instrument snapshot — counters,
// gauges, and stage/RPC latency histograms (falkon.metrics). Through a
// forwarder the reply is the merge of every downstream dispatcher.
func (c *Client) Metrics() (fproto.MetricsReply, error) {
	cli, _, err := c.conn()
	if err != nil {
		return fproto.MetricsReply{}, err
	}
	var ms fproto.MetricsReply
	err = cli.Call(fproto.MethodMetrics, nil, &ms)
	return ms, err
}

// Events fetches task-lifecycle trace events recorded after sinceSeq (0 for
// the oldest retained); max bounds the batch (0 = all retained). The reply's
// NextSeq tails the stream on a direct dispatcher connection; through a
// forwarder it is 0 (pagination unavailable).
func (c *Client) Events(sinceSeq uint64, max int) (fproto.EventsReply, error) {
	cli, _, err := c.conn()
	if err != nil {
		return fproto.EventsReply{}, err
	}
	var er fproto.EventsReply
	err = cli.Call(fproto.MethodEvents, fproto.EventsRequest{SinceSeq: sinceSeq, Max: max}, &er)
	return er, err
}

// Close destroys the instance and disconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	cli, epr := c.cli, c.epr
	c.mu.Unlock()
	close(c.closedCh)
	c.cond.Broadcast()
	if c.pollStop != nil {
		close(c.pollStop)
	}
	_ = cli.Call(fproto.MethodDestroyInstance, fproto.DestroyInstanceRequest{EPR: epr}, nil)
	err := cli.Close()
	if c.pollDone != nil {
		<-c.pollDone
	}
	return err
}
