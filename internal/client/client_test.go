package client_test

import (
	"testing"
	"time"

	"falkon/internal/client"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/task"
)

// startDispatcher boots a dispatcher with n executors.
func startDispatcher(t *testing.T, n int) *dispatch.Dispatcher {
	t.Helper()
	d := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	for i := 0; i < n; i++ {
		ex, err := executor.Start(executor.Options{
			ID:             "e" + string(rune('0'+i)),
			DispatcherAddr: d.Addr(),
			SleepScale:     0.001,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ex.Stop)
	}
	return d
}

func TestConnectFailsOnBadAddress(t *testing.T) {
	if _, err := client.Connect(client.Options{DispatcherAddr: "127.0.0.1:1"}); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

func TestBundlingSplitsSubmissions(t *testing.T) {
	d := startDispatcher(t, 2)
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr(), BundleSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var gen task.IDGen
	// 20 tasks with bundle 7: bundles of 7, 7, 6 — all must arrive.
	if err := c.Submit(task.Batch(&gen, 20, 0)); err != nil {
		t.Fatal(err)
	}
	if got := c.Submitted(); got != 20 {
		t.Fatalf("submitted = %d", got)
	}
	rs, err := c.WaitN(20, 20*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 20 {
		t.Fatalf("results = %d", len(rs))
	}
}

func TestSubmitEmptyIsNoop(t *testing.T) {
	d := startDispatcher(t, 1)
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Submit(nil); err != nil {
		t.Fatal(err)
	}
	if c.Submitted() != 0 {
		t.Fatal("submitted nonzero")
	}
}

func TestWaitNTimeout(t *testing.T) {
	// No executors: results never arrive.
	d := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, 1, 0)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.WaitN(1, 100*time.Millisecond)
	if err == nil {
		t.Fatal("WaitN returned without results")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout did not fire promptly")
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	d := startDispatcher(t, 1)
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitAfterCloseFails(t *testing.T) {
	d := startDispatcher(t, 1)
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, 1, 0)); err == nil {
		t.Fatal("submit after close succeeded")
	}
}

func TestLargeResultVolumeThroughBufferedChannel(t *testing.T) {
	// More results than the channel buffer (4096): the overflow spill path
	// must not drop or deadlock.
	d := startDispatcher(t, 4)
	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr(), BundleSize: 500})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const n = 6000
	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, n, 0)); err != nil {
		t.Fatal(err)
	}
	rs, err := c.WaitN(n, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[task.ID]bool, n)
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate %v", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("unique results = %d", len(seen))
	}
}
