package client_test

import (
	"testing"
	"time"

	"falkon/internal/backoff"
	"falkon/internal/client"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/fproto"
	"falkon/internal/task"
)

// TestSplitAddrs pins the dispatcher-chain syntax shared by the client and
// executor attach paths.
func TestSplitAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a:1", []string{"a:1"}},
		{"a:1,b:2", []string{"a:1", "b:2"}},
		{" a:1 , b:2 ,", []string{"a:1", "b:2"}},
		{"", nil},
		{",,", nil},
	}
	for _, c := range cases {
		got := fproto.SplitAddrs(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("SplitAddrs(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitAddrs(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestClientFailsOverToFallbackDispatcher attaches a client to a leaf with a
// root-fallback chain, kills the leaf, and expects the client to re-home on
// the fallback — resubmitting owed work under a fresh instance, since EPRs
// don't travel between dispatchers — and to keep delivering exactly once.
func TestClientFailsOverToFallbackDispatcher(t *testing.T) {
	fast := backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2}
	leaf := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := leaf.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	root := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := root.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	// One executor chained the same way: when the leaf dies it follows the
	// client to the fallback.
	ex, err := executor.Start(executor.Options{
		ID: "fo-exec", DispatcherAddr: leaf.Addr() + "," + root.Addr(),
		SleepScale: 0.001, Reconnect: true, Backoff: fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Stop)

	c, err := client.Connect(client.Options{
		DispatcherAddr: leaf.Addr() + "," + root.Addr(),
		BundleSize:     10, Reconnect: true, Backoff: fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, 20, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitN(20, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Owed work in flight, then the leaf crashes for good (no restart).
	if err := c.Submit(task.Batch(&gen, 30, 2*time.Second)); err != nil { // 2ms real
		t.Fatal(err)
	}
	leaf.Abort()

	rs, err := c.WaitN(30, 30*time.Second)
	if err != nil {
		t.Fatalf("tasks lost across failover: %v", err)
	}
	seen := make(map[task.ID]bool)
	for _, r := range rs {
		if seen[r.ID] {
			t.Fatalf("duplicate result %v", r.ID)
		}
		seen[r.ID] = true
	}
	if c.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want ≥1", c.Reconnects())
	}

	// The fallback is now home: fresh work flows without the leaf.
	if err := c.Submit(task.Batch(&gen, 10, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitN(10, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if st, err := c.Stats(); err != nil || st.Completed == 0 {
		t.Fatalf("fallback dispatcher stats = %+v, err %v", st, err)
	}
}
