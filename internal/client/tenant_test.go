package client_test

import (
	"testing"
	"time"

	"falkon/internal/backoff"
	"falkon/internal/client"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/task"
)

// TestClientHonorsRetryAfter pins the admission-control contract from the
// client side: a rate-limited tenant's submissions stall on the dispatcher's
// retry-after hints instead of erroring, and every task still lands.
func TestClientHonorsRetryAfter(t *testing.T) {
	d := dispatch.New(dispatch.Options{
		Logf:    t.Logf,
		Tenants: []dispatch.TenantSpec{{Name: "metered", Rate: 400, Burst: 8}},
	})
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	ex, err := executor.Start(executor.Options{ID: "rt-exec", DispatcherAddr: d.Addr(), SleepScale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Stop)

	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr(), Tenant: "metered", BundleSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var gen task.IDGen
	// 32 tasks against burst 8 at 400/s: the later bundles must be deferred.
	if err := c.Submit(task.Batch(&gen, 32, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitN(32, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if c.Throttled() == 0 {
		t.Fatal("rate-limited submissions were never throttled")
	}
}

// TestReconnectingClientKeepsTenant fails a tenant-scoped client over to a
// fallback dispatcher and checks both halves of the contract survive the
// hop: the re-created instance carries the tenant (the fallback's stats
// attribute the work correctly), and the reconnected client still honors
// the fallback's retry-after throttling.
func TestReconnectingClientKeepsTenant(t *testing.T) {
	fast := backoff.Policy{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.2}
	tenants := []dispatch.TenantSpec{{Name: "roamer", Rate: 400, Burst: 8}}
	leaf := dispatch.New(dispatch.Options{Logf: t.Logf, Tenants: tenants})
	if err := leaf.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	root := dispatch.New(dispatch.Options{Logf: t.Logf, Tenants: tenants})
	if err := root.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { root.Close() })
	ex, err := executor.Start(executor.Options{
		ID: "tn-exec", DispatcherAddr: leaf.Addr() + "," + root.Addr(),
		SleepScale: 0.001, Reconnect: true, Backoff: fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Stop)

	c, err := client.Connect(client.Options{
		DispatcherAddr: leaf.Addr() + "," + root.Addr(),
		Tenant:         "roamer", BundleSize: 8, Reconnect: true, Backoff: fast,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })

	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, 8, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitN(8, 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// Kill the leaf for good; the client re-homes on the fallback.
	leaf.Abort()
	if err := c.Submit(task.Batch(&gen, 32, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitN(32, 30*time.Second); err != nil {
		t.Fatalf("tasks lost across tenant failover: %v", err)
	}
	if c.Reconnects() < 1 {
		t.Fatalf("reconnects = %d, want ≥1", c.Reconnects())
	}
	if c.Throttled() == 0 {
		t.Fatal("fallback dispatcher never throttled the reconnected tenant")
	}

	st := root.Stats()
	found := false
	for _, ts := range st.Tenants {
		if ts.Name == "roamer" {
			found = true
			if ts.Completed < 32 {
				t.Fatalf("fallback attributed %d completions to roamer, want ≥32", ts.Completed)
			}
		}
	}
	if !found {
		t.Fatal("fallback dispatcher stats carry no row for the reconnected tenant")
	}
}
