package task

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineStringRoundTrip(t *testing.T) {
	for _, e := range []Engine{EngineSleep, EngineData, EngineExec, EngineFunc} {
		got, err := ParseEngine(e.String())
		if err != nil {
			t.Fatalf("ParseEngine(%q): %v", e.String(), err)
		}
		if got != e {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
}

func TestParseEngineDefaultsAndErrors(t *testing.T) {
	if e, err := ParseEngine(""); err != nil || e != EngineSleep {
		t.Fatalf("empty engine = %v, %v", e, err)
	}
	if e, err := ParseEngine("  EXEC "); err != nil || e != EngineExec {
		t.Fatalf("case/space engine = %v, %v", e, err)
	}
	if _, err := ParseEngine("bogus"); err == nil {
		t.Fatal("bogus engine did not error")
	}
}

func TestUnknownEnumStrings(t *testing.T) {
	if s := Engine(200).String(); s != "engine(200)" {
		t.Fatalf("engine string = %q", s)
	}
	if s := Status(200).String(); s != "status(200)" {
		t.Fatalf("status string = %q", s)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		StatusQueued:     "queued",
		StatusDispatched: "dispatched",
		StatusRunning:    "running",
		StatusDone:       "done",
		StatusFailed:     "failed",
	}
	for st, w := range want {
		if st.String() != w {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), w)
		}
	}
}

func TestIDGenConcurrentUniqueness(t *testing.T) {
	var g IDGen
	const workers, per = 8, 1000
	ids := make(chan ID, workers*per)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				ids <- g.Next()
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[ID]bool, workers*per)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d ids, want %d", len(seen), workers*per)
	}
}

func TestBatchBuildsSleepTasks(t *testing.T) {
	var g IDGen
	ts := Batch(&g, 5, 2*time.Second)
	if len(ts) != 5 {
		t.Fatalf("len = %d", len(ts))
	}
	for i, tk := range ts {
		if tk.Engine != EngineSleep || tk.Duration != 2*time.Second {
			t.Fatalf("task %d = %+v", i, tk)
		}
		if tk.ID != ID(i+1) {
			t.Fatalf("task %d id = %v", i, tk.ID)
		}
	}
}

func TestResultTimingAccessors(t *testing.T) {
	r := Result{
		QueuedAt:     1 * time.Second,
		DispatchedAt: 3 * time.Second,
		StartedAt:    4 * time.Second,
		FinishedAt:   10 * time.Second,
	}
	if got := r.QueueTime(); got != 2*time.Second {
		t.Fatalf("queue = %v", got)
	}
	if got := r.ExecTime(); got != 7*time.Second {
		t.Fatalf("exec = %v", got)
	}
	if got := r.RunTime(); got != 6*time.Second {
		t.Fatalf("run = %v", got)
	}
	if got := r.Overhead(); got != 1*time.Second {
		t.Fatalf("overhead = %v", got)
	}
}

func TestResultFailed(t *testing.T) {
	if (Result{}).Failed() {
		t.Fatal("zero result reported failed")
	}
	if !(Result{ExitCode: 1}).Failed() {
		t.Fatal("nonzero exit not failed")
	}
	if !(Result{Err: "boom"}).Failed() {
		t.Fatal("error not failed")
	}
}

// Property: timing identities hold for any ordered timestamps.
func TestResultTimingIdentity(t *testing.T) {
	prop := func(a, b, c, d uint16) bool {
		q := time.Duration(a) * time.Millisecond
		disp := q + time.Duration(b)*time.Millisecond
		start := disp + time.Duration(c)*time.Millisecond
		fin := start + time.Duration(d)*time.Millisecond
		r := Result{QueuedAt: q, DispatchedAt: disp, StartedAt: start, FinishedAt: fin}
		return r.QueueTime()+r.ExecTime() == fin-q &&
			r.Overhead()+r.RunTime() == r.ExecTime() &&
			r.QueueTime() >= 0 && r.ExecTime() >= 0 && r.Overhead() >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIDString(t *testing.T) {
	if got := ID(42).String(); got != "t42" {
		t.Fatalf("id string = %q", got)
	}
}

func TestReadJSONL(t *testing.T) {
	in := `# workload
{"id": 5, "engine": 2, "command": "/bin/true"}

{"engine": 0, "command": "sleep", "duration": 1000000000}
`
	var gen IDGen
	tasks, err := ReadJSONL(strings.NewReader(in), &gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 2 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].ID != 5 || tasks[0].Engine != EngineExec {
		t.Fatalf("task0 = %+v", tasks[0])
	}
	if tasks[1].ID == 0 {
		t.Fatal("missing id not assigned")
	}
	if tasks[1].Duration != time.Second {
		t.Fatalf("duration = %v", tasks[1].Duration)
	}
}

func TestReadJSONLErrors(t *testing.T) {
	var gen IDGen
	if _, err := ReadJSONL(strings.NewReader("not json"), &gen); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("# only comments\n"), &gen); err == nil {
		t.Fatal("empty workload accepted")
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var gen IDGen
	in := Batch(&gen, 10, 2*time.Second)
	in[3].Engine = EngineData
	in[3].IO = &IOSpec{ReadBytes: 99, Dataset: "d"}
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadJSONL(&buf, &gen)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 10 {
		t.Fatalf("tasks = %d", len(out))
	}
	if out[3].IO == nil || out[3].IO.Dataset != "d" {
		t.Fatalf("task3 = %+v", out[3])
	}
}
