package task

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// ReadJSONL parses a workload file holding one JSON-encoded Task per line.
// Blank lines and lines starting with '#' are skipped; tasks without an ID
// get one from gen.
func ReadJSONL(r io.Reader, gen *IDGen) ([]Task, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Task
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		var t Task
		if err := json.Unmarshal([]byte(text), &t); err != nil {
			return nil, fmt.Errorf("task: line %d: %w", line, err)
		}
		if t.ID == 0 {
			t.ID = gen.Next()
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("task: no tasks in workload")
	}
	return out, nil
}

// WriteJSONL emits tasks one JSON object per line — the inverse of
// ReadJSONL.
func WriteJSONL(w io.Writer, tasks []Task) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range tasks {
		if err := enc.Encode(&tasks[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
