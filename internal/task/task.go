// Package task defines the task and result types shared by every layer of
// the Falkon reproduction: the live TCP runtime, the virtual-time simulator,
// the workflow engine, and the benchmark drivers.
//
// A Task mirrors the fields of a Falkon "submit" entry from the paper
// (§3.2): working directory, command, arguments, and environment, plus the
// synthetic engines this reproduction adds so experiments can run without
// forking real processes.
package task

import (
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Engine selects how an executor interprets a task's command.
type Engine uint8

const (
	// EngineSleep runs a synthetic task of a fixed duration. Args[0] is the
	// duration in seconds (fractional allowed). "sleep 0" tasks — the
	// paper's microbenchmark staple — complete immediately.
	EngineSleep Engine = iota
	// EngineData models a task that stages data in and/or out before a
	// fixed compute duration; staging cost is charged by the storage model.
	EngineData
	// EngineExec forks a real OS process (command + args). Used by the
	// standalone executor binary; never used in virtual time.
	EngineExec
	// EngineFunc invokes a Go function registered on the executor by name.
	// Used by the examples and the workflow engine to run task bodies
	// in-process.
	EngineFunc
)

// String returns the engine name used in workload files and logs.
func (e Engine) String() string {
	switch e {
	case EngineSleep:
		return "sleep"
	case EngineData:
		return "data"
	case EngineExec:
		return "exec"
	case EngineFunc:
		return "func"
	default:
		return fmt.Sprintf("engine(%d)", uint8(e))
	}
}

// ParseEngine converts a workload-file engine name to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sleep", "":
		return EngineSleep, nil
	case "data":
		return EngineData, nil
	case "exec":
		return EngineExec, nil
	case "func":
		return EngineFunc, nil
	default:
		return 0, fmt.Errorf("task: unknown engine %q", s)
	}
}

// ID identifies a task uniquely within one client instance.
type ID uint64

// String renders the id the way logs and the wire protocol expect.
func (id ID) String() string { return "t" + strconv.FormatUint(uint64(id), 10) }

// Status tracks a task through its lifecycle.
type Status uint8

const (
	StatusQueued Status = iota
	StatusDispatched
	StatusRunning
	StatusDone
	StatusFailed
)

// String returns the lifecycle stage name.
func (s Status) String() string {
	switch s {
	case StatusQueued:
		return "queued"
	case StatusDispatched:
		return "dispatched"
	case StatusRunning:
		return "running"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// IOSpec describes the data a task reads and writes (EngineData). Sizes are
// in bytes; Location names the storage tier ("shared" or "local").
type IOSpec struct {
	ReadBytes  int64  `json:"read_bytes,omitempty"`
	WriteBytes int64  `json:"write_bytes,omitempty"`
	Location   string `json:"location,omitempty"`
	// Dataset names the data object the task reads; the data-aware
	// dispatch policy (paper §6 future work) uses it to route tasks to
	// executors that already cache the object.
	Dataset string `json:"dataset,omitempty"`
}

// Task is one unit of work. It is immutable once submitted; all mutable
// bookkeeping lives in the dispatcher and in Result.
type Task struct {
	ID      ID       `json:"id"`
	Engine  Engine   `json:"engine,omitempty"`
	Dir     string   `json:"dir,omitempty"`
	Command string   `json:"command,omitempty"`
	Args    []string `json:"args,omitempty"`
	Env     []string `json:"env,omitempty"`
	IO      *IOSpec  `json:"io,omitempty"`

	// Duration is the synthetic run time for EngineSleep/EngineData tasks.
	Duration time.Duration `json:"duration,omitempty"`

	// MaxRetries bounds re-dispatch under the replay policy (paper §3.1).
	// Zero means use the dispatcher default.
	MaxRetries int `json:"max_retries,omitempty"`

	// Stage labels the workflow stage that produced the task (for the
	// per-stage accounting in §4.6 and §5). Optional.
	Stage int `json:"stage,omitempty"`

	// Trace is the distributed-tracing id assigned at submit time. Unlike
	// ID it survives the EPR rewriting a forwarder tier performs, so span
	// dumps from different processes join on it. Zero means untraced.
	Trace uint64 `json:"trace,omitempty"`
}

// Sleep returns a synthetic task that runs for d.
func Sleep(id ID, d time.Duration) Task {
	return Task{ID: id, Engine: EngineSleep, Command: "sleep", Duration: d}
}

// Result reports a completed (or failed) task.
type Result struct {
	ID       ID     `json:"id"`
	ExitCode int    `json:"exit_code,omitempty"`
	Stdout   string `json:"stdout,omitempty"`
	Stderr   string `json:"stderr,omitempty"`
	Err      string `json:"err,omitempty"`

	// ExecutorID names the executor that ran the task.
	ExecutorID string `json:"executor,omitempty"`

	// Timing in nanoseconds since the owning instance's epoch. In the live
	// runtime the epoch is wall-clock start; in the simulator it is virtual
	// time zero. QueuedAt <= DispatchedAt <= StartedAt <= FinishedAt.
	// omitempty: executors upload results before the dispatcher rebases
	// these stamps, so they are zero on the wire's hottest leg.
	QueuedAt     time.Duration `json:"queued_at,omitempty"`
	DispatchedAt time.Duration `json:"dispatched_at,omitempty"`
	StartedAt    time.Duration `json:"started_at,omitempty"`
	FinishedAt   time.Duration `json:"finished_at,omitempty"`

	// Attempts counts dispatches including the successful one.
	Attempts int `json:"attempts,omitempty"`

	// Trace echoes the task's trace id so result consumers can correlate
	// with span dumps without re-joining on (EPR, ID).
	Trace uint64 `json:"trace,omitempty"`
}

// Failed reports whether the task ultimately failed.
func (r Result) Failed() bool { return r.Err != "" || r.ExitCode != 0 }

// QueueTime is the interval the task spent waiting to be dispatched.
func (r Result) QueueTime() time.Duration { return r.DispatchedAt - r.QueuedAt }

// ExecTime is the interval from dispatch to result delivery, the paper's
// per-task "execution time" (Table 3).
func (r Result) ExecTime() time.Duration { return r.FinishedAt - r.DispatchedAt }

// RunTime is the interval the task actually computed.
func (r Result) RunTime() time.Duration { return r.FinishedAt - r.StartedAt }

// Overhead is lifecycle time minus pure run time: the paper's Figure 10
// metric (thread creation + WS pickup + exec setup + result delivery).
func (r Result) Overhead() time.Duration { return r.ExecTime() - r.RunTime() }

// IDGen hands out monotonically increasing task ids; safe for concurrent
// use.
type IDGen struct{ next atomic.Uint64 }

// Next returns a fresh id, starting from 1.
func (g *IDGen) Next() ID { return ID(g.next.Add(1)) }

// Batch builds n sleep tasks of duration d using gen for ids.
func Batch(gen *IDGen, n int, d time.Duration) []Task {
	out := make([]Task, n)
	for i := range out {
		out[i] = Sleep(gen.Next(), d)
	}
	return out
}
