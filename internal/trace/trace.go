// Package trace handles grid workload traces. The paper motivates Falkon
// with observations from real grid traces — "the average wait time of grid
// jobs is higher in practice than predictions" [36] and "real grid
// workloads comprise a large percentage of tasks submitted as batches of
// tasks" [37] — and this package supplies that substrate: a reader/writer
// for a Standard-Workload-Format-like text format, a synthetic generator
// reproducing the cited characteristics (bursty batch arrivals, heavy-
// tailed runtimes), and replay adapters for both the Falkon model and the
// LRM baseline.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Job is one trace record: a task arriving at Submit and running for
// Runtime. BatchID groups jobs submitted together (the paper's [37]
// batched-submission structure).
type Job struct {
	ID      int
	Submit  time.Duration
	Runtime time.Duration
	BatchID int
}

// Trace is an ordered job sequence (non-decreasing Submit times).
type Trace struct {
	Name string
	Jobs []Job
}

// Validate checks ordering and field sanity.
func (tr *Trace) Validate() error {
	var last time.Duration
	for i, j := range tr.Jobs {
		if j.Submit < last {
			return fmt.Errorf("trace: job %d submits at %v before predecessor %v", i, j.Submit, last)
		}
		if j.Runtime < 0 {
			return fmt.Errorf("trace: job %d has negative runtime", i)
		}
		last = j.Submit
	}
	return nil
}

// Span returns the submission window length.
func (tr *Trace) Span() time.Duration {
	if len(tr.Jobs) == 0 {
		return 0
	}
	return tr.Jobs[len(tr.Jobs)-1].Submit
}

// TotalRuntime sums job runtimes.
func (tr *Trace) TotalRuntime() time.Duration {
	var sum time.Duration
	for _, j := range tr.Jobs {
		sum += j.Runtime
	}
	return sum
}

// Batches returns the number of distinct batch ids.
func (tr *Trace) Batches() int {
	seen := map[int]bool{}
	for _, j := range tr.Jobs {
		seen[j.BatchID] = true
	}
	return len(seen)
}

// Write emits the trace in the text format: a header comment, then one
// line per job: "<id> <submit_sec> <runtime_sec> <batch>". Fields are
// SWF-inspired (job number, submit time, run time) plus the batch column.
func (tr *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; falkon trace %q: %d jobs\n", tr.Name, len(tr.Jobs))
	fmt.Fprintf(bw, "; columns: id submit_seconds runtime_seconds batch\n")
	for _, j := range tr.Jobs {
		fmt.Fprintf(bw, "%d %.3f %.3f %d\n", j.ID, j.Submit.Seconds(), j.Runtime.Seconds(), j.BatchID)
	}
	return bw.Flush()
}

// Read parses the text format; lines beginning with ';' or '#' are
// comments.
func Read(name string, r io.Reader) (*Trace, error) {
	tr := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", lineNo, len(fields))
		}
		id, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: id: %w", lineNo, err)
		}
		submit, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: submit: %w", lineNo, err)
		}
		runtime, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: runtime: %w", lineNo, err)
		}
		batch, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: batch: %w", lineNo, err)
		}
		tr.Jobs = append(tr.Jobs, Job{
			ID:      id,
			Submit:  time.Duration(submit * float64(time.Second)),
			Runtime: time.Duration(runtime * float64(time.Second)),
			BatchID: batch,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// GenConfig parameterizes the synthetic generator.
type GenConfig struct {
	// Jobs is the total job count.
	Jobs int
	// Span is the submission window.
	Span time.Duration
	// BatchMean is the mean batch size (geometric); the cited study [37]
	// found most grid jobs arrive in batches.
	BatchMean float64
	// RuntimeMedian and RuntimeSigma shape the lognormal runtime
	// distribution (heavy tail, as in the cited traces [36]).
	RuntimeMedian time.Duration
	RuntimeSigma  float64
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultGenConfig mimics a small grid-trace slice: 2,000 jobs over an
// hour, batches of ~20, median runtime 30 s with a heavy tail.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Jobs:          2000,
		Span:          time.Hour,
		BatchMean:     20,
		RuntimeMedian: 30 * time.Second,
		RuntimeSigma:  1.2,
		Seed:          1,
	}
}

// Generate builds a synthetic trace: batches arrive at uniform-random
// instants within the span; each batch holds a geometric number of jobs
// sharing a submit time; runtimes are lognormal.
func Generate(cfg GenConfig) *Trace {
	if cfg.Jobs <= 0 {
		panic(fmt.Sprintf("trace: jobs = %d", cfg.Jobs))
	}
	if cfg.BatchMean < 1 {
		cfg.BatchMean = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &Trace{Name: fmt.Sprintf("synthetic-%d", cfg.Jobs)}

	type batch struct {
		at   time.Duration
		size int
	}
	var batches []batch
	remaining := cfg.Jobs
	for remaining > 0 {
		// Geometric batch size with the configured mean.
		size := 1
		p := 1 / cfg.BatchMean
		for size < remaining && rng.Float64() > p {
			size++
		}
		if size > remaining {
			size = remaining
		}
		at := time.Duration(rng.Int63n(int64(cfg.Span) + 1))
		batches = append(batches, batch{at: at, size: size})
		remaining -= size
	}
	sort.Slice(batches, func(i, j int) bool { return batches[i].at < batches[j].at })

	id := 0
	for bi, b := range batches {
		for k := 0; k < b.size; k++ {
			id++
			// Lognormal runtime around the median.
			logN := rng.NormFloat64() * cfg.RuntimeSigma
			runtime := time.Duration(float64(cfg.RuntimeMedian) * math.Exp(logN))
			tr.Jobs = append(tr.Jobs, Job{
				ID:      id,
				Submit:  b.at,
				Runtime: runtime,
				BatchID: bi + 1,
			})
		}
	}
	return tr
}

// Stats summarizes a trace's shape: batch-size distribution and runtime
// quantiles — the figures the cited grid studies report.
type Stats struct {
	Jobs          int
	Batches       int
	MeanBatchSize float64
	MaxBatchSize  int
	// Runtime quantiles in seconds.
	RuntimeP50 float64
	RuntimeP90 float64
	RuntimeP99 float64
	RuntimeMax float64
}

// Summarize computes Stats for the trace.
func (tr *Trace) Summarize() Stats {
	st := Stats{Jobs: len(tr.Jobs)}
	if st.Jobs == 0 {
		return st
	}
	sizes := map[int]int{}
	runtimes := make([]float64, 0, len(tr.Jobs))
	for _, j := range tr.Jobs {
		sizes[j.BatchID]++
		runtimes = append(runtimes, j.Runtime.Seconds())
	}
	st.Batches = len(sizes)
	for _, n := range sizes {
		if n > st.MaxBatchSize {
			st.MaxBatchSize = n
		}
	}
	st.MeanBatchSize = float64(st.Jobs) / float64(st.Batches)
	sort.Float64s(runtimes)
	q := func(p float64) float64 {
		i := int(p * float64(len(runtimes)-1))
		return runtimes[i]
	}
	st.RuntimeP50 = q(0.5)
	st.RuntimeP90 = q(0.9)
	st.RuntimeP99 = q(0.99)
	st.RuntimeMax = runtimes[len(runtimes)-1]
	return st
}
