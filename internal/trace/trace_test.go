package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"falkon/internal/lrm"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
)

func TestGenerateProducesRequestedJobs(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = 500
	tr := Generate(cfg)
	if len(tr.Jobs) != 500 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Span() > cfg.Span {
		t.Fatalf("span = %v > %v", tr.Span(), cfg.Span)
	}
	// The cited studies find most jobs arrive in batches: far fewer
	// batches than jobs.
	if b := tr.Batches(); b >= 500/2 {
		t.Fatalf("batches = %d, want << jobs", b)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig())
	b := Generate(DefaultGenConfig())
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("lengths differ")
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d differs", i)
		}
	}
}

func TestGenerateHeavyTail(t *testing.T) {
	tr := Generate(DefaultGenConfig())
	median := DefaultGenConfig().RuntimeMedian
	over10x := 0
	for _, j := range tr.Jobs {
		if j.Runtime > 10*median {
			over10x++
		}
	}
	if over10x == 0 {
		t.Fatal("no heavy-tail runtimes generated")
	}
	if over10x > len(tr.Jobs)/4 {
		t.Fatalf("tail too fat: %d of %d over 10x median", over10x, len(tr.Jobs))
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = 200
	in := Generate(cfg)
	var buf bytes.Buffer
	if err := in.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Read("rt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) != len(in.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(out.Jobs), len(in.Jobs))
	}
	for i := range in.Jobs {
		// Millisecond precision survives the text format.
		if out.Jobs[i].ID != in.Jobs[i].ID || out.Jobs[i].BatchID != in.Jobs[i].BatchID {
			t.Fatalf("job %d ids differ", i)
		}
		dS := out.Jobs[i].Submit - in.Jobs[i].Submit
		dR := out.Jobs[i].Runtime - in.Jobs[i].Runtime
		if dS < -time.Millisecond || dS > time.Millisecond || dR < -time.Millisecond || dR > time.Millisecond {
			t.Fatalf("job %d timing drift: %v %v", i, dS, dR)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"1 2 3",                    // too few fields
		"x 1.0 1.0 1",              // bad id
		"1 x 1.0 1",                // bad submit
		"1 1.0 x 1",                // bad runtime
		"1 1.0 1.0 x",              // bad batch
		"1 5.0 1.0 1\n2 1.0 1.0 1", // out of order
	}
	for _, c := range cases {
		if _, err := Read("bad", strings.NewReader(c)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestReadSkipsComments(t *testing.T) {
	in := "; header\n# more\n1 0.0 1.0 1\n\n2 1.0 2.0 1\n"
	tr, err := Read("c", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
}

// Property: any generated config round-trips through the text format with
// job count and batch structure preserved.
func TestRoundTripProperty(t *testing.T) {
	prop := func(seed int64, jobs uint8) bool {
		cfg := DefaultGenConfig()
		cfg.Seed = seed
		cfg.Jobs = int(jobs)%200 + 1
		in := Generate(cfg)
		var buf bytes.Buffer
		if err := in.Write(&buf); err != nil {
			return false
		}
		out, err := Read("p", &buf)
		if err != nil {
			return false
		}
		return len(out.Jobs) == len(in.Jobs) && out.Batches() == in.Batches()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayFalkonBeatsLRM(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = 300
	cfg.Span = 10 * time.Minute
	tr := Generate(cfg)

	eF := sim.New(2)
	mF := simfalkon.New(eF, simfalkon.NoSecurity())
	falkon := ReplayFalkon(eF, mF, tr, 64)

	eL := sim.New(2)
	l := lrm.New(eL, lrm.PBS(), 64)
	gw := lrm.NewGateway(eL, l, lrm.GRAM4())
	pbs := ReplayLRM(eL, gw, tr)

	if falkon.Jobs != 300 || pbs.Jobs != 300 {
		t.Fatalf("jobs: falkon=%d pbs=%d", falkon.Jobs, pbs.Jobs)
	}
	// Falkon's wait is milliseconds; direct PBS submission waits minutes
	// (the [36] observation that real grid waits are long).
	if falkon.AvgWait >= pbs.AvgWait/10 {
		t.Fatalf("falkon wait %v not <<10x pbs wait %v", falkon.AvgWait, pbs.AvgWait)
	}
	if falkon.Makespan >= pbs.Makespan {
		t.Fatalf("falkon makespan %v not below pbs %v", falkon.Makespan, pbs.Makespan)
	}
}

func TestReplayStatsAccounting(t *testing.T) {
	tr := &Trace{Jobs: []Job{
		{ID: 1, Submit: 0, Runtime: time.Second, BatchID: 1},
		{ID: 2, Submit: 0, Runtime: time.Second, BatchID: 1},
	}}
	e := sim.New(1)
	m := simfalkon.New(e, simfalkon.NoSecurity())
	st := ReplayFalkon(e, m, tr, 2)
	if st.Jobs != 2 {
		t.Fatalf("jobs = %d", st.Jobs)
	}
	if st.Makespan < time.Second {
		t.Fatalf("makespan = %v", st.Makespan)
	}
	if st.MaxWait < st.AvgWait {
		t.Fatalf("max %v < avg %v", st.MaxWait, st.AvgWait)
	}
}

func TestSummarize(t *testing.T) {
	cfg := DefaultGenConfig()
	cfg.Jobs = 1000
	tr := Generate(cfg)
	st := tr.Summarize()
	if st.Jobs != 1000 || st.Batches != tr.Batches() {
		t.Fatalf("stats = %+v", st)
	}
	if st.MeanBatchSize < 5 || st.MeanBatchSize > 80 {
		t.Fatalf("mean batch = %.1f, want near the configured 20", st.MeanBatchSize)
	}
	// Heavy tail: P99 well above the median; quantiles ordered.
	if !(st.RuntimeP50 <= st.RuntimeP90 && st.RuntimeP90 <= st.RuntimeP99 && st.RuntimeP99 <= st.RuntimeMax) {
		t.Fatalf("quantiles out of order: %+v", st)
	}
	if st.RuntimeP99 < 3*st.RuntimeP50 {
		t.Fatalf("no heavy tail: p50=%.1f p99=%.1f", st.RuntimeP50, st.RuntimeP99)
	}
	if z := (&Trace{}).Summarize(); z.Jobs != 0 {
		t.Fatal("empty trace stats")
	}
}
