package trace

import (
	"time"

	"falkon/internal/lrm"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
	"falkon/internal/task"
)

// ReplayStats summarizes one trace replay.
type ReplayStats struct {
	Jobs      int
	Makespan  time.Duration // last completion
	AvgWait   time.Duration // submission to start
	MaxWait   time.Duration
	TotalWait time.Duration
}

// record folds one job's wait into the stats.
func (s *ReplayStats) record(wait time.Duration) {
	s.Jobs++
	s.TotalWait += wait
	if wait > s.MaxWait {
		s.MaxWait = wait
	}
}

func (s *ReplayStats) finalize(end time.Duration) {
	s.Makespan = end
	if s.Jobs > 0 {
		s.AvgWait = s.TotalWait / time.Duration(s.Jobs)
	}
}

// ReplayFalkon replays the trace on a Falkon model with nExec executors:
// each batch arrives as one bundled submission at its trace time.
func ReplayFalkon(e *sim.Engine, m *simfalkon.Model, tr *Trace, nExec int) *ReplayStats {
	for i := 0; i < nExec; i++ {
		m.AddExecutor(0, nil)
	}
	stats := &ReplayStats{}
	var lastDone time.Duration
	prev := m.OnTaskDone
	m.OnTaskDone = func(r simfalkon.Rec) {
		if prev != nil {
			prev(r)
		}
		stats.record(r.Started - r.Queued)
		lastDone = r.Finished
	}
	// Group consecutive jobs sharing a batch into one submission.
	i := 0
	for i < len(tr.Jobs) {
		j := i
		for j < len(tr.Jobs) && tr.Jobs[j].BatchID == tr.Jobs[i].BatchID {
			j++
		}
		group := tr.Jobs[i:j]
		at := group[0].Submit
		specs := make([]simfalkon.Spec, len(group))
		for k, job := range group {
			specs[k] = simfalkon.Spec{Dur: job.Runtime}
		}
		e.At(at, func() { m.Submit(specs, len(specs)) })
		i = j
	}
	e.Run()
	stats.finalize(lastDone)
	return stats
}

// ReplayLRM replays the trace by submitting each job directly to a batch
// scheduler through a GRAM gateway — the paper's single-level baseline.
func ReplayLRM(e *sim.Engine, gw *lrm.Gateway, tr *Trace) *ReplayStats {
	stats := &ReplayStats{}
	var lastDone time.Duration
	for _, j := range tr.Jobs {
		j := j
		e.At(j.Submit, func() {
			gw.SubmitTask(task.Task{ID: task.ID(j.ID), Duration: j.Runtime}, func(o lrm.TaskOutcome) {
				stats.record(o.QueueTime)
				if o.DoneAt > lastDone {
					lastDone = o.DoneAt
				}
			})
		})
	}
	e.Run()
	stats.finalize(lastDone)
	return stats
}
