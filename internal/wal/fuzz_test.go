package wal

import (
	"bytes"
	"testing"

	"falkon/internal/task"
)

// FuzzJournalDecode throws arbitrary bytes at the record decoder and the
// replayer. Properties:
//
//  1. Never panics (the corpus includes valid prefixes, so the mutator
//     explores torn and corrupted variants of real journals).
//  2. Never fabricates: every record the decoder accepts must re-encode to
//     exactly the bytes it was decoded from — the framing is canonical, so
//     an accepted record is bit-for-bit something a journal writer produced.
//  3. Decoding always terminates and consumes monotonically.
func FuzzJournalDecode(f *testing.F) {
	// Seed with realistic journals: whole, torn mid-record, bit-flipped.
	var seed []byte
	seed, _ = marshalRecord(seed, KindInstance, InstanceRec{EPR: "falkon-instance-1", Notify: true})
	seed, _ = marshalRecord(seed, KindAccept, AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: 1, Command: "sleep"}, {ID: 2}}})
	seed, _ = marshalRecord(seed, KindDispatch, DispatchRec{EPR: "falkon-instance-1", ID: 1, Exec: "x1"})
	seed, _ = marshalRecord(seed, KindComplete, CompleteRec{EPR: "falkon-instance-1", Result: task.Result{ID: 1, Stdout: "ok"}})
	seed, _ = marshalRecord(seed, KindDestroy, DestroyRec{EPR: "falkon-instance-1"})
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn tail
	torn := append([]byte(nil), seed...)
	torn[10] ^= 0x40 // corrupt first record's body
	f.Add(torn)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := newReplayer()
		buf := data
		for {
			rec, rest, ok := nextRecord(buf)
			if !ok {
				break
			}
			consumed := buf[:len(buf)-len(rest)]
			// Canonical-framing property: re-encoding the accepted record
			// must reproduce the consumed bytes exactly.
			re := appendRecord(nil, rec.kind, rec.body)
			if !bytes.Equal(re, consumed) {
				t.Fatalf("accepted record re-encodes to %x, consumed %x", re, consumed)
			}
			r.apply(rec) // must not panic on any accepted record
			if len(rest) >= len(buf) {
				t.Fatalf("decode did not consume: %d -> %d", len(buf), len(rest))
			}
			buf = rest
		}
		// Materializing state must not panic either.
		_ = r.state()
	})
}
