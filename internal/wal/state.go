package wal

import (
	"strconv"
	"strings"

	"falkon/internal/sched"
	"falkon/internal/task"
)

// Record bodies. These are the journal's wire format: changing a field is
// a journal-format change and must stay decodable against old journals.

// InstanceRec records an instance creation.
type InstanceRec struct {
	EPR    string `json:"epr"`
	Name   string `json:"name,omitempty"`
	Notify bool   `json:"notify,omitempty"`
	// Tenant is the owning tenant ("" in pre-tenancy journals, which
	// recovery maps to the default tenant).
	Tenant string `json:"tenant,omitempty"`
}

// DestroyRec records an instance destruction.
type DestroyRec struct {
	EPR string `json:"epr"`
}

// AcceptRec records a bundle of accepted tasks. Shard is the scheduling
// shard the bundle was enqueued on — informational: recovery re-partitions
// by the same affinity hash (sched.TaskShard), so the field lets tools and
// tests verify the re-partitioning is identical rather than drive it.
type AcceptRec struct {
	EPR   string      `json:"epr"`
	Tasks []task.Task `json:"tasks"`
	Shard int         `json:"shard,omitempty"`
	// Tenant is the submitting instance's tenant (informational — replay
	// derives it from the instance when absent, as in old journals).
	Tenant string `json:"tenant,omitempty"`
}

// DispatchRec records one task assignment. Shard is the task's affinity
// shard (informational, see AcceptRec).
type DispatchRec struct {
	EPR   string  `json:"epr"`
	ID    task.ID `json:"id"`
	Exec  string  `json:"exec,omitempty"`
	Shard int     `json:"shard,omitempty"`
}

// CompleteRec records one finalized result. Shard is the task's affinity
// shard (informational, see AcceptRec).
type CompleteRec struct {
	EPR    string      `json:"epr"`
	Result task.Result `json:"result"`
	Shard  int         `json:"shard,omitempty"`
}

// Instance is one recovered client instance.
type Instance struct {
	EPR       string `json:"epr"`
	Name      string `json:"name,omitempty"`
	Notify    bool   `json:"notify,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Submitted int64  `json:"submitted,omitempty"`
	// Results are finalized results not yet known to be collected; recovery
	// redelivers them (clients dedupe by task ID). Together with Pending
	// they form the instance's live task set — the dedupe set behind
	// idempotent resubmission across restarts.
	Results []task.Result `json:"results,omitempty"`
}

// Pending is one accepted-but-unfinished task: queued or outstanding at
// the time of the crash (outstanding work is re-dispatched on recovery).
type Pending struct {
	EPR      string    `json:"epr"`
	Task     task.Task `json:"task"`
	Attempts int       `json:"attempts,omitempty"`
	Tenant   string    `json:"tenant,omitempty"`
}

// State is the dispatcher state a snapshot captures and recovery rebuilds.
type State struct {
	NextEPR   int64          `json:"next_epr"`
	Counters  sched.Counters `json:"counters"`
	Instances []Instance     `json:"instances,omitempty"`
	Pending   []Pending      `json:"pending,omitempty"`
}

// pendKey identifies an accepted task within the journal's scope.
type pendKey struct {
	epr string
	id  task.ID
}

// replayer folds journal records into a State. It mirrors the dispatcher's
// own transitions but is pure data: no clock, no transport.
type replayer struct {
	nextEPR   int64
	counters  sched.Counters
	instances map[string]*Instance
	order     []string // instance EPRs in creation order (deterministic output)
	pending   []Pending
	pendIdx   map[pendKey]int // index into pending; tombstoned entries (EPR "") skipped on output
}

func newReplayer() *replayer {
	return &replayer{
		instances: make(map[string]*Instance),
		pendIdx:   make(map[pendKey]int),
	}
}

// load seeds the replayer from a snapshot's State.
func (r *replayer) load(st *State) {
	r.nextEPR = st.NextEPR
	r.counters = st.Counters
	for i := range st.Instances {
		in := st.Instances[i]
		r.instances[in.EPR] = &in
		r.order = append(r.order, in.EPR)
	}
	for _, p := range st.Pending {
		r.pendIdx[pendKey{p.EPR, p.Task.ID}] = len(r.pending)
		r.pending = append(r.pending, p)
	}
}

// eprSeq extracts the numeric suffix of a dispatcher-minted EPR
// ("falkon-instance-42" → 42), or 0 for foreign formats.
func eprSeq(epr string) int64 {
	i := strings.LastIndexByte(epr, '-')
	if i < 0 {
		return 0
	}
	n, err := strconv.ParseInt(epr[i+1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// apply folds one journal record into the state. Unknown kinds and records
// referencing unknown instances or tasks are ignored: the journal replays
// what it can prove, never guesses.
func (r *replayer) apply(rec rawRecord) {
	switch rec.kind {
	case KindInstance:
		var in InstanceRec
		if unmarshal(rec.body, &in) != nil || in.EPR == "" {
			return
		}
		if n := eprSeq(in.EPR); n > r.nextEPR {
			r.nextEPR = n
		}
		if _, ok := r.instances[in.EPR]; ok {
			return
		}
		r.instances[in.EPR] = &Instance{EPR: in.EPR, Name: in.Name, Notify: in.Notify, Tenant: in.Tenant}
		r.order = append(r.order, in.EPR)
	case KindDestroy:
		var de DestroyRec
		if unmarshal(rec.body, &de) != nil {
			return
		}
		if _, ok := r.instances[de.EPR]; !ok {
			return
		}
		delete(r.instances, de.EPR)
		for i := range r.order {
			if r.order[i] == de.EPR {
				r.order = append(r.order[:i], r.order[i+1:]...)
				break
			}
		}
		for k, i := range r.pendIdx {
			if k.epr == de.EPR {
				r.pending[i].EPR = "" // tombstone
				delete(r.pendIdx, k)
			}
		}
	case KindAccept:
		var ac AcceptRec
		if unmarshal(rec.body, &ac) != nil {
			return
		}
		in, ok := r.instances[ac.EPR]
		if !ok {
			return
		}
		tenant := ac.Tenant
		if tenant == "" {
			tenant = in.Tenant
		}
		for _, t := range ac.Tasks {
			// The dispatcher only journals tasks it admitted, so a replayed
			// accept for an ID already pending can only be a duplicated
			// record — skip it. An accept AFTER that ID completed is a
			// legitimate re-run (the client resubmitted because it never got
			// the result) and re-enters the pending set.
			if _, live := r.pendIdx[pendKey{ac.EPR, t.ID}]; live {
				continue
			}
			in.Submitted++
			r.counters.Submitted++
			r.pendIdx[pendKey{ac.EPR, t.ID}] = len(r.pending)
			r.pending = append(r.pending, Pending{EPR: ac.EPR, Task: t, Tenant: tenant})
		}
	case KindDispatch:
		var dr DispatchRec
		if unmarshal(rec.body, &dr) != nil {
			return
		}
		if i, ok := r.pendIdx[pendKey{dr.EPR, dr.ID}]; ok {
			r.pending[i].Attempts++
			r.counters.Dispatched++
		}
	case KindComplete:
		var cr CompleteRec
		if unmarshal(rec.body, &cr) != nil {
			return
		}
		key := pendKey{cr.EPR, cr.Result.ID}
		i, ok := r.pendIdx[key]
		if !ok {
			return // duplicate or foreign completion: drop, never fabricate
		}
		r.pending[i].EPR = "" // tombstone
		delete(r.pendIdx, key)
		if cr.Result.Failed() {
			r.counters.Failed++
		} else {
			r.counters.Completed++
		}
		if in, ok := r.instances[cr.EPR]; ok {
			in.Results = append(in.Results, cr.Result)
		}
	}
}

// state materializes the folded State: live instances in creation order,
// live pending tasks in accept order.
func (r *replayer) state() *State {
	st := &State{NextEPR: r.nextEPR, Counters: r.counters}
	for _, epr := range r.order {
		st.Instances = append(st.Instances, *r.instances[epr])
	}
	for _, p := range r.pending {
		if p.EPR != "" {
			st.Pending = append(st.Pending, p)
		}
	}
	return st
}
