package wal

import (
	"fmt"
	"path/filepath"
	"sync"
)

// MirrorOptions configures a standby's mirror journal.
type MirrorOptions struct {
	// Sync selects the fsync policy for mirrored appends (default group:
	// every appended batch is fsynced before the append returns, so the
	// standby's ack — sent after Append returns — always means durable).
	Sync SyncPolicy
	// SegmentBytes rotates mirror segments past this size (default 16 MiB).
	SegmentBytes int64
	// FS is the filesystem the mirror writes through (default the real OS).
	FS FS
	// Logf receives mirror logs; nil silences them.
	Logf func(format string, args ...any)
}

// Mirror is the standby side of WAL replication: a directory of segments
// and snapshots laid out exactly like a leader's journal dir, fed by
// streamed frames instead of local appends. A promoted standby runs the
// ordinary Recover over the mirror directory — the mirror's only job is to
// keep the directory recoverable at every instant.
//
// Reset installs a new baseline snapshot (the leader's consistent cut) and
// Append extends the stream behind it. Both keep the snapshot-boundary
// invariant Recover relies on: the baseline snapshot is written at an index
// above every pre-existing file *before* anything older is pruned, so a
// crash mid-reset still recovers — to either the old state or the new one,
// never to a mix.
type Mirror struct {
	dir  string
	fs   FS
	opts MirrorOptions

	mu       sync.Mutex
	seg      File
	segIndex uint64
	segSize  int64
	pos      int64 // records appended since the baseline (term-scoped position)
	closed   bool
}

// OpenMirror opens (or creates) a mirror journal directory. The mirror
// starts without a segment: the first Reset installs the baseline and opens
// one. Appending before a Reset is an error — a standby always attaches
// before it streams.
func OpenMirror(dir string, opts MirrorOptions) (*Mirror, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mirror: %w", err)
	}
	return &Mirror{dir: dir, fs: opts.FS, opts: opts}, nil
}

func (m *Mirror) logf(format string, args ...any) {
	if m.opts.Logf != nil {
		m.opts.Logf(format, args...)
	}
}

// Reset installs st as the mirror's new baseline at stream position pos:
// the leader's state as of the attach cut, with every subsequent streamed
// record applying on top. Ordering is crash-safe: the new snapshot lands at
// an index above every existing file and only then are the old files
// pruned, so Recover always finds either the old journal or the complete
// new baseline.
func (m *Mirror) Reset(st *State, pos int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: mirror closed")
	}
	// Choose a boundary above everything on disk (and above the segment we
	// may currently have open).
	var max uint64
	if segs, err := sortedIndexed(m.fs, m.dir, "seg-", ".wal"); err == nil && len(segs) > 0 {
		max = segs[len(segs)-1]
	}
	if snaps, err := sortedIndexed(m.fs, m.dir, "snap-", ".snap"); err == nil && len(snaps) > 0 && snaps[len(snaps)-1] > max {
		max = snaps[len(snaps)-1]
	}
	if m.segIndex > max {
		max = m.segIndex
	}
	boundary := max + 1

	frame, err := marshalRecord(nil, KindSnapshot, st)
	if err != nil {
		return err
	}
	tmp := filepath.Join(m.dir, "snap.tmp")
	f, err := m.fs.Create(tmp, false)
	if err != nil {
		return fmt.Errorf("wal: mirror snapshot: %w", err)
	}
	if _, err = f.Write(frame); err == nil && m.opts.Sync.Mode != SyncOff {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		m.fs.Remove(tmp)
		return fmt.Errorf("wal: mirror snapshot: %w", err)
	}
	if err := m.fs.Rename(tmp, filepath.Join(m.dir, snapName(boundary))); err != nil {
		m.fs.Remove(tmp)
		return fmt.Errorf("wal: mirror snapshot: %w", err)
	}
	if m.opts.Sync.Mode != SyncOff {
		m.fs.SyncDir(m.dir)
	}

	// The new baseline is durable: retire the old segment and prune
	// everything it superseded.
	if m.seg != nil {
		m.seg.Close()
		m.seg = nil
	}
	ents, err := m.fs.ReadDir(m.dir)
	if err == nil {
		for _, e := range ents {
			if n, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok && n < boundary {
				m.fs.Remove(filepath.Join(m.dir, e.Name()))
			}
			if n, ok := parseIndexed(e.Name(), "snap-", ".snap"); ok && n < boundary {
				m.fs.Remove(filepath.Join(m.dir, e.Name()))
			}
		}
	}
	seg, err := m.fs.Create(filepath.Join(m.dir, segName(boundary)), true)
	if err != nil {
		return fmt.Errorf("wal: mirror segment: %w", err)
	}
	m.seg, m.segIndex, m.segSize = seg, boundary, 0
	m.pos = pos
	m.logf("wal: mirror baseline at snap-%08d, stream pos %d", boundary, pos)
	return nil
}

// Append writes one streamed batch of framed records (already CRC-framed by
// the leader) and advances the mirror's stream position by records. Under
// the default group-sync policy the batch is fsynced before Append returns,
// so the position the standby acks afterward is durable.
func (m *Mirror) Append(frames []byte, records int) error {
	if len(frames) == 0 {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return fmt.Errorf("wal: mirror closed")
	}
	if m.seg == nil {
		return fmt.Errorf("wal: mirror append before baseline")
	}
	if _, err := m.seg.Write(frames); err != nil {
		return fmt.Errorf("wal: mirror append: %w", err)
	}
	if m.opts.Sync.Mode == SyncGroup {
		if err := m.seg.Sync(); err != nil {
			return fmt.Errorf("wal: mirror sync: %w", err)
		}
	}
	m.segSize += int64(len(frames))
	m.pos += int64(records)
	if m.segSize >= m.opts.SegmentBytes {
		// Roll to the next segment without a snapshot: Recover replays every
		// segment at or above the baseline boundary in index order, so a
		// multi-segment tail is fine.
		next := m.segIndex + 1
		seg, err := m.fs.Create(filepath.Join(m.dir, segName(next)), true)
		if err != nil {
			return fmt.Errorf("wal: mirror rotate: %w", err)
		}
		m.seg.Close()
		m.seg, m.segIndex, m.segSize = seg, next, 0
	}
	return nil
}

// Pos reports the mirror's stream position: the count of records applied on
// top of the baseline. This is the position the standby acks to the leader.
func (m *Mirror) Pos() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pos
}

// Close seals the mirror. The directory stays recoverable.
func (m *Mirror) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil
	}
	m.closed = true
	if m.seg != nil {
		if m.opts.Sync.Mode != SyncOff {
			m.seg.Sync()
		}
		err := m.seg.Close()
		m.seg = nil
		return err
	}
	return nil
}
