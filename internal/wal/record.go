// Package wal implements the dispatcher's durability subsystem: a
// segmented, CRC-framed, append-only write-ahead journal with batched
// group-commit fsync, periodic snapshot compaction, and a recovery path
// that rebuilds the scheduling state a crashed dispatcher held in memory.
//
// The journal records the three task-lifecycle transitions the dispatcher
// cannot afford to lose — accept, dispatch, complete — plus instance
// creation and destruction. A snapshot is a CRC-framed serialization of
// the live state (pending ring + outstanding table + instance buffers);
// recovery loads the newest valid snapshot and replays the segment tail
// behind it, tolerating torn or truncated tail records by design: a
// record either passes its CRC whole or the replay stops, so the journal
// never fabricates state.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
)

// Kind tags a journal record.
type Kind uint8

const (
	// KindInstance records an instance creation (factory EPR handed out).
	KindInstance Kind = 1
	// KindDestroy records an instance destruction.
	KindDestroy Kind = 2
	// KindAccept records a bundle of accepted tasks. The submit
	// acknowledgment is withheld until this record is durable, so an
	// accepted task survives any crash.
	KindAccept Kind = 3
	// KindDispatch records a task assignment to an executor (advisory:
	// recovery uses it to restore attempt counts).
	KindDispatch Kind = 4
	// KindComplete records a finalized result, including its payload, so
	// results awaiting collection survive a crash and are redelivered.
	KindComplete Kind = 5
	// KindSnapshot frames a state snapshot (snapshot files only, never in
	// segments).
	KindSnapshot Kind = 9
)

// String names the record kind for logs.
func (k Kind) String() string {
	switch k {
	case KindInstance:
		return "instance"
	case KindDestroy:
		return "destroy"
	case KindAccept:
		return "accept"
	case KindDispatch:
		return "dispatch"
	case KindComplete:
		return "complete"
	case KindSnapshot:
		return "snapshot"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Record framing: an 8-byte header — payload length (4 bytes LE) and
// CRC-32C of the payload (4 bytes LE) — followed by the payload, which is
// one kind byte plus the record's JSON body. The CRC covers the kind byte,
// so a record cannot be reinterpreted as a different transition.
const (
	headerSize = 8
	// maxRecord bounds a single record (and rejects absurd lengths decoded
	// from corrupt headers before any allocation happens).
	maxRecord = 64 << 20
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendRecord frames one record onto dst and returns the extended slice.
func appendRecord(dst []byte, kind Kind, body []byte) []byte {
	n := 1 + len(body)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	dst = append(dst, hdr[:]...)
	payloadStart := len(dst)
	dst = append(dst, byte(kind))
	dst = append(dst, body...)
	crc := crc32.Checksum(dst[payloadStart:], castagnoli)
	binary.LittleEndian.PutUint32(dst[payloadStart-4:payloadStart], crc)
	return dst
}

// marshalRecord frames a record whose body is the JSON encoding of v.
func marshalRecord(dst []byte, kind Kind, v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return dst, fmt.Errorf("wal: marshal %v record: %w", kind, err)
	}
	return appendRecord(dst, kind, body), nil
}

// rawRecord is one decoded record: the kind byte and its JSON body. The
// body aliases the decode buffer.
type rawRecord struct {
	kind Kind
	body []byte
}

// nextRecord decodes the record at the head of buf. ok=false means the
// buffer holds no further valid record — a clean end, a torn tail, or
// corruption; the caller treats all three as end-of-journal. rest is the
// remaining buffer after a successful decode.
func nextRecord(buf []byte) (rec rawRecord, rest []byte, ok bool) {
	if len(buf) < headerSize {
		return rawRecord{}, nil, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if n == 0 || n > maxRecord || int(n) > len(buf)-headerSize {
		return rawRecord{}, nil, false // torn or corrupt length
	}
	payload := buf[headerSize : headerSize+int(n)]
	if crc32.Checksum(payload, castagnoli) != crc {
		return rawRecord{}, nil, false // corrupt payload: reject, never guess
	}
	return rawRecord{kind: Kind(payload[0]), body: payload[1:]}, buf[headerSize+int(n):], true
}

// unmarshal decodes a record body, named so replay call sites stay terse.
func unmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

// NextFrame splits the first framed record off buf without decoding its
// body: it returns the whole frame (header + payload, CRC-verified), the
// remaining buffer, and whether a complete valid record was present. The
// replication source uses it to count and re-frame committed batches; the
// returned frame aliases buf.
func NextFrame(buf []byte) (frame, rest []byte, ok bool) {
	if len(buf) < headerSize {
		return nil, nil, false
	}
	n := binary.LittleEndian.Uint32(buf[0:4])
	crc := binary.LittleEndian.Uint32(buf[4:8])
	if n == 0 || n > maxRecord || int(n) > len(buf)-headerSize {
		return nil, nil, false
	}
	end := headerSize + int(n)
	if crc32.Checksum(buf[headerSize:end], castagnoli) != crc {
		return nil, nil, false
	}
	return buf[:end], buf[end:], true
}

// CountFrames reports how many complete valid records buf holds (a batch
// handed to Options.Mirror is always whole records, so this is exact).
func CountFrames(buf []byte) int {
	n := 0
	for {
		_, rest, ok := NextFrame(buf)
		if !ok {
			return n
		}
		buf = rest
		n++
	}
}
