package wal

import (
	"testing"

	"falkon/internal/task"
)

// TestRecoverTenantPropagation: tenant identity journaled at instance
// creation and on accept records survives crash recovery — both on the
// recovered instances and on every pending task — so the restarted
// dispatcher re-charges per-tenant accounting correctly.
func TestRecoverTenantPropagation(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1", Name: "c1", Tenant: "analytics"})
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-2", Name: "c2", Tenant: "batch"})
	j.Append(KindAccept, AcceptRec{EPR: "falkon-instance-1", Tenant: "analytics", Tasks: []task.Task{{ID: 1}, {ID: 2}}})
	// An accept without the tenant field (as an old journal would hold)
	// inherits the instance's tenant on replay.
	j.Append(KindAccept, AcceptRec{EPR: "falkon-instance-2", Tasks: []task.Task{{ID: 3}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 2 {
		t.Fatalf("instances = %d, want 2", len(st.Instances))
	}
	if st.Instances[0].Tenant != "analytics" || st.Instances[1].Tenant != "batch" {
		t.Fatalf("instance tenants = %q, %q", st.Instances[0].Tenant, st.Instances[1].Tenant)
	}
	if len(st.Pending) != 3 {
		t.Fatalf("pending = %d, want 3", len(st.Pending))
	}
	for _, p := range st.Pending[:2] {
		if p.Tenant != "analytics" {
			t.Fatalf("pending task %d tenant = %q, want analytics", p.Task.ID, p.Tenant)
		}
	}
	if st.Pending[2].Tenant != "batch" {
		t.Fatalf("tenantless accept record did not inherit instance tenant: %q", st.Pending[2].Tenant)
	}
}

// TestRecoverPreTenancyJournal: records without any tenant fields (the
// pre-tenancy journal format) replay with empty tenants — the dispatcher
// maps those to "default" — and nothing else changes.
func TestRecoverPreTenancyJournal(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1", Name: "old"})
	j.Append(KindAccept, AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: 7}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 1 || st.Instances[0].Tenant != "" {
		t.Fatalf("pre-tenancy instance decoded wrong: %+v", st.Instances)
	}
	if len(st.Pending) != 1 || st.Pending[0].Tenant != "" {
		t.Fatalf("pre-tenancy pending decoded wrong: %+v", st.Pending)
	}
}
