package wal

import (
	"reflect"
	"testing"
	"time"

	"falkon/internal/task"
)

// feedMirror wires a leader journal's Mirror hook into a standby Mirror the
// way the replication source + standby pair does: copy the batch (it
// aliases the committer's buffer), count its frames, append.
func feedMirror(t *testing.T, m *Mirror) func(batch []byte) {
	t.Helper()
	return func(batch []byte) {
		cp := append([]byte(nil), batch...)
		if err := m.Append(cp, CountFrames(cp)); err != nil {
			t.Errorf("mirror append: %v", err)
		}
	}
}

// TestMirrorRoundTrip drives a leader journal with the Mirror hook feeding
// a standby Mirror, then recovers both directories and asserts the standby
// rebuilt the identical state — the invariant a promoted standby relies on.
func TestMirrorRoundTrip(t *testing.T) {
	leaderDir, standbyDir := t.TempDir(), t.TempDir()

	m, err := OpenMirror(standbyDir, MirrorOptions{})
	if err != nil {
		t.Fatalf("OpenMirror: %v", err)
	}
	if err := m.Reset(&State{}, 0); err != nil {
		t.Fatalf("Reset: %v", err)
	}

	_, j, _, err := Recover(leaderDir, Options{Mirror: feedMirror(t, m)})
	if err != nil {
		t.Fatalf("Recover leader: %v", err)
	}

	const epr = "falkon-instance-1"
	mustWait(t, j, KindInstance, InstanceRec{EPR: epr})
	mustWait(t, j, KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{
		task.Sleep(1, 0), task.Sleep(2, time.Millisecond), task.Sleep(3, 0),
	}})
	if err := j.Append(KindDispatch, DispatchRec{EPR: epr, ID: 1, Exec: "e1"}); err != nil {
		t.Fatalf("append dispatch: %v", err)
	}
	mustWait(t, j, KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: 1, ExecutorID: "e1"}})
	if err := j.Close(); err != nil {
		t.Fatalf("close leader: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("close mirror: %v", err)
	}
	if got, want := m.Pos(), int64(4); got != want {
		t.Fatalf("mirror pos = %d, want %d", got, want)
	}

	lst, lj, _, err := Recover(leaderDir, Options{})
	if err != nil {
		t.Fatalf("re-recover leader: %v", err)
	}
	lj.Close()
	sst, sj, _, err := Recover(standbyDir, Options{})
	if err != nil {
		t.Fatalf("recover standby: %v", err)
	}
	sj.Close()
	if !reflect.DeepEqual(lst, sst) {
		t.Fatalf("recovered states differ:\nleader:  %+v\nstandby: %+v", lst, sst)
	}
	if len(sst.Pending) != 2 || len(sst.Instances) != 1 {
		t.Fatalf("standby state = %+v, want 2 pending + 1 instance", sst)
	}
}

// TestMirrorResetOverExisting asserts a re-baseline (stream gap: the
// standby fell behind the source's ring) lands the new snapshot above the
// old files and prunes them, leaving exactly the new state recoverable.
func TestMirrorResetOverExisting(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMirror(dir, MirrorOptions{})
	if err != nil {
		t.Fatalf("OpenMirror: %v", err)
	}
	if err := m.Reset(&State{NextEPR: 1}, 0); err != nil {
		t.Fatalf("first Reset: %v", err)
	}
	frame := appendRecord(nil, KindInstance, []byte(`{"epr":"falkon-instance-1"}`))
	if err := m.Append(frame, 1); err != nil {
		t.Fatalf("Append: %v", err)
	}

	// New leader incarnation: fresh cut with different state at pos 7.
	next := &State{NextEPR: 9, Instances: []Instance{{EPR: "falkon-instance-9"}}}
	if err := m.Reset(next, 7); err != nil {
		t.Fatalf("second Reset: %v", err)
	}
	if got := m.Pos(); got != 7 {
		t.Fatalf("pos after reset = %d, want 7", got)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, j, info, err := Recover(dir, Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	j.Close()
	if !reflect.DeepEqual(st, next) {
		t.Fatalf("recovered %+v, want %+v", st, next)
	}
	if info.Records != 0 {
		t.Fatalf("replayed %d records from pruned history, want 0", info.Records)
	}
}

// TestMirrorRotation streams enough to roll segments and verifies the
// multi-segment tail replays in order.
func TestMirrorRotation(t *testing.T) {
	dir := t.TempDir()
	m, err := OpenMirror(dir, MirrorOptions{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("OpenMirror: %v", err)
	}
	if err := m.Reset(&State{}, 0); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var frames []byte
	frames, err = marshalRecord(frames, KindInstance, InstanceRec{EPR: "falkon-instance-1"})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Append(frames, 1); err != nil {
		t.Fatalf("Append instance: %v", err)
	}
	var want int64 = 1
	for i := 1; i <= 40; i++ {
		f, err := marshalRecord(nil, KindAccept, AcceptRec{
			EPR: "falkon-instance-1", Tasks: []task.Task{task.Sleep(task.ID(i), 0)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Append(f, 1); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		want++
	}
	if got := m.Pos(); got != want {
		t.Fatalf("pos = %d, want %d", got, want)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, j, info, err := Recover(dir, Options{})
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	j.Close()
	if info.Segments < 2 {
		t.Fatalf("replayed %d segments, want rotation (>= 2)", info.Segments)
	}
	if len(st.Pending) != 40 {
		t.Fatalf("recovered %d pending, want 40", len(st.Pending))
	}
}

// TestNextFrame exercises the exported frame splitter against framed and
// damaged buffers.
func TestNextFrame(t *testing.T) {
	var buf []byte
	buf = appendRecord(buf, KindAccept, []byte(`{"epr":"x"}`))
	buf = appendRecord(buf, KindComplete, []byte(`{"epr":"y"}`))
	if got := CountFrames(buf); got != 2 {
		t.Fatalf("CountFrames = %d, want 2", got)
	}
	f1, rest, ok := NextFrame(buf)
	if !ok || len(f1)+len(rest) != len(buf) {
		t.Fatalf("NextFrame split wrong: ok=%v len(f1)=%d len(rest)=%d", ok, len(f1), len(rest))
	}
	// A frame must round-trip through the record decoder.
	rec, _, ok := nextRecord(f1)
	if !ok || rec.kind != KindAccept {
		t.Fatalf("frame did not decode: ok=%v kind=%v", ok, rec.kind)
	}
	// Corruption is rejected, truncation yields no frame.
	bad := append([]byte(nil), buf...)
	bad[headerSize+2] ^= 0xFF
	if _, _, ok := NextFrame(bad); ok {
		t.Fatal("NextFrame accepted corrupt payload")
	}
	if _, _, ok := NextFrame(buf[:headerSize+1]); ok {
		t.Fatal("NextFrame accepted truncated buffer")
	}
	if got := CountFrames(nil); got != 0 {
		t.Fatalf("CountFrames(nil) = %d, want 0", got)
	}
}

func mustWait(t *testing.T, j *Journal, kind Kind, v any) {
	t.Helper()
	h, err := j.AppendWait(kind, v)
	if err != nil {
		t.Fatalf("append %v: %v", kind, err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("wait %v: %v", kind, err)
	}
}
