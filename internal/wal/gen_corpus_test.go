package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"falkon/internal/task"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate the fuzz seed corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzJournalDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var whole []byte
	whole, _ = marshalRecord(whole, KindInstance, InstanceRec{EPR: "falkon-instance-1", Notify: true})
	whole, _ = marshalRecord(whole, KindAccept, AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: 1, Command: "sleep"}, {ID: 2}}})
	whole, _ = marshalRecord(whole, KindDispatch, DispatchRec{EPR: "falkon-instance-1", ID: 1, Exec: "x1"})
	whole, _ = marshalRecord(whole, KindComplete, CompleteRec{EPR: "falkon-instance-1", Result: task.Result{ID: 1, Stdout: "ok"}})
	whole, _ = marshalRecord(whole, KindDestroy, DestroyRec{EPR: "falkon-instance-1"})

	torn := append([]byte(nil), whole...)
	torn[10] ^= 0x40

	var big []byte
	bigTasks := make([]task.Task, 64)
	for i := range bigTasks {
		bigTasks[i] = task.Task{ID: task.ID(i + 1), Command: "sleep"}
	}
	big, _ = marshalRecord(big, KindInstance, InstanceRec{EPR: "falkon-instance-2"})
	big, _ = marshalRecord(big, KindAccept, AcceptRec{EPR: "falkon-instance-2", Tasks: bigTasks})

	seeds := map[string][]byte{
		"whole-journal":   whole,
		"torn-tail":       whole[:len(whole)-3],
		"bitflipped-body": torn,
		"empty":           nil,
		"garbage-header":  {0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 1},
		"big-accept":      big,
	}
	for name, data := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(data)))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
