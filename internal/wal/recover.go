package wal

import (
	"fmt"
	"os"
	"path/filepath"
)

// RecoveryInfo summarizes what Recover rebuilt, for logs and stats.
type RecoveryInfo struct {
	// SnapshotIndex is the boundary of the snapshot that seeded recovery
	// (0 when recovery started from an empty state).
	SnapshotIndex uint64
	// Segments is how many journal segments were replayed.
	Segments int
	// Records is how many valid records the tail replay folded in.
	Records int
	// Pending and Results count recovered work: tasks to re-queue and
	// finalized results awaiting redelivery.
	Pending int
	Results int
}

// Recover rebuilds dispatcher state from dir and opens a journal appending
// after everything on disk. It loads the newest readable snapshot, replays
// every segment at or above its boundary in ascending order, and stops each
// segment's replay at the first torn or corrupt record. An empty or missing
// directory yields a fresh empty state.
func Recover(dir string, opts Options) (*State, *Journal, RecoveryInfo, error) {
	var info RecoveryInfo
	r := newReplayer()
	fsys := opts.FS
	if fsys == nil {
		fsys = OS
	}

	segs, err := sortedIndexed(fsys, dir, "seg-", ".wal")
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, info, fmt.Errorf("wal: recover: %w", err)
	}
	snaps, _ := sortedIndexed(fsys, dir, "snap-", ".snap")

	// Newest readable snapshot wins; a corrupt snapshot falls back to the
	// next older one (its segments are only pruned after a newer snapshot
	// is durable, so the fallback chain is intact).
	var base uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		st, ok := readSnapshot(fsys, filepath.Join(dir, snapName(snaps[i])))
		if ok {
			r.load(st)
			base = snaps[i]
			info.SnapshotIndex = snaps[i]
			break
		}
		if opts.Logf != nil {
			opts.Logf("wal: snapshot %d unreadable, falling back", snaps[i])
		}
	}

	next := base
	for _, idx := range segs {
		if idx < base {
			continue // covered by the snapshot
		}
		n, err := replaySegment(fsys, filepath.Join(dir, segName(idx)), r)
		if err != nil {
			return nil, nil, info, err
		}
		info.Segments++
		info.Records += n
		if idx >= next {
			next = idx + 1
		}
	}
	if len(segs) == 0 && base == 0 {
		next = 1 // fresh directory: start at segment 1
	} else if next == base {
		next = base + 1 // snapshot exists but its segments are gone
	}

	st := r.state()
	info.Pending = len(st.Pending)
	for _, in := range st.Instances {
		info.Results += len(in.Results)
	}

	j, err := open(dir, next, opts)
	if err != nil {
		return nil, nil, info, err
	}
	opts.Metrics.Counter("falkon_wal_replayed_records_total").Add(int64(info.Records))
	return st, j, info, nil
}

// readSnapshot decodes one snapshot file. ok=false on any damage: snapshot
// reads follow the same rule as segment replay — prove it or skip it.
func readSnapshot(fsys FS, path string) (*State, bool) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return nil, false
	}
	rec, _, ok := nextRecord(buf)
	if !ok || rec.kind != KindSnapshot {
		return nil, false
	}
	var st State
	if unmarshal(rec.body, &st) != nil {
		return nil, false
	}
	return &st, true
}

// replaySegment folds one segment's valid prefix into r and reports how
// many records it held.
func replaySegment(fsys FS, path string, r *replayer) (int, error) {
	buf, err := fsys.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("wal: recover: %w", err)
	}
	n := 0
	for {
		rec, rest, ok := nextRecord(buf)
		if !ok {
			return n, nil // clean end, torn tail, or corruption: stop here
		}
		r.apply(rec)
		buf = rest
		n++
	}
}
