package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"falkon/internal/task"
)

func testOpts() Options {
	return Options{Sync: SyncPolicy{Mode: SyncOff}} // tests don't need fsync
}

func mustRecover(t *testing.T, dir string, opts Options) (*State, *Journal, RecoveryInfo) {
	t.Helper()
	st, j, info, err := Recover(dir, opts)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	return st, j, info
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		mode SyncMode
		ival time.Duration
		bad  bool
	}{
		{"group", SyncGroup, 0, false},
		{"", SyncGroup, 0, false},
		{"off", SyncOff, 0, false},
		{"100ms", SyncInterval, 100 * time.Millisecond, false},
		{"1s", SyncInterval, time.Second, false},
		{"-5ms", 0, 0, true},
		{"banana", 0, 0, true},
	}
	for _, c := range cases {
		p, err := ParseSyncPolicy(c.in)
		if c.bad {
			if err == nil {
				t.Errorf("ParseSyncPolicy(%q): expected error", c.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSyncPolicy(%q): %v", c.in, err)
			continue
		}
		if p.Mode != c.mode || p.Interval != c.ival {
			t.Errorf("ParseSyncPolicy(%q) = %+v, want mode %v interval %v", c.in, p, c.mode, c.ival)
		}
	}
}

// TestJournalRoundTrip covers the full cycle: append lifecycle records,
// close, recover, and check the rebuilt state.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, j, _ := mustRecover(t, dir, testOpts())
	if len(st.Instances) != 0 || len(st.Pending) != 0 {
		t.Fatalf("fresh dir not empty: %+v", st)
	}

	epr := "falkon-instance-1"
	if err := j.Append(KindInstance, InstanceRec{EPR: epr, Name: "cli", Notify: true}); err != nil {
		t.Fatal(err)
	}
	tasks := []task.Task{{ID: 1, Args: []string{"a"}}, {ID: 2, Args: []string{"b"}}, {ID: 3, Args: []string{"c"}}}
	h, err := j.AppendWait(KindAccept, AcceptRec{EPR: epr, Tasks: tasks})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil {
		t.Fatalf("AppendWait: %v", err)
	}
	j.Append(KindDispatch, DispatchRec{EPR: epr, ID: 1, Exec: "x1"})
	j.Append(KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: 1, Stdout: "done"}})
	j.Append(KindDispatch, DispatchRec{EPR: epr, ID: 2, Exec: "x1"})
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st, j2, info := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 1 {
		t.Fatalf("instances = %d, want 1", len(st.Instances))
	}
	in := st.Instances[0]
	if in.EPR != epr || in.Name != "cli" || !in.Notify || in.Submitted != 3 {
		t.Errorf("instance = %+v", in)
	}
	if len(in.Results) != 1 || in.Results[0].ID != 1 || in.Results[0].Stdout != "done" {
		t.Errorf("results = %+v", in.Results)
	}
	// Task 1 completed; 2 (outstanding at crash) and 3 (queued) are pending.
	if len(st.Pending) != 2 {
		t.Fatalf("pending = %+v, want 2", st.Pending)
	}
	if st.Pending[0].Task.ID != 2 || st.Pending[0].Attempts != 1 {
		t.Errorf("pending[0] = %+v, want id 2 attempts 1", st.Pending[0])
	}
	if st.Pending[1].Task.ID != 3 || st.Pending[1].Attempts != 0 {
		t.Errorf("pending[1] = %+v, want id 3 attempts 0", st.Pending[1])
	}
	if st.NextEPR != 1 {
		t.Errorf("NextEPR = %d, want 1", st.NextEPR)
	}
	if st.Counters.Submitted != 3 || st.Counters.Completed != 1 || st.Counters.Dispatched != 2 {
		t.Errorf("counters = %+v", st.Counters)
	}
	if info.Records != 5 {
		t.Errorf("replayed %d records, want 5", info.Records)
	}
}

// TestAcceptDedupe: replaying a resubmitted bundle must not duplicate
// pending tasks — the journal-level guarantee behind idempotent resubmit.
func TestAcceptDedupe(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	bundle := AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 7}, {ID: 8}}}
	j.Append(KindAccept, bundle)
	j.Append(KindAccept, bundle) // client retried after a lost ack
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Pending) != 2 {
		t.Fatalf("pending = %+v, want 2 (dedupe failed)", st.Pending)
	}
	if st.Counters.Submitted != 2 || st.Instances[0].Submitted != 2 {
		t.Errorf("submitted = %d/%d, want 2/2", st.Counters.Submitted, st.Instances[0].Submitted)
	}
}

// TestReacceptAfterComplete: an accept record for an ID that already
// completed is a legitimate re-run (client resubmitted after losing the
// result) and must re-enter the pending set.
func TestReacceptAfterComplete(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 5}}})
	j.Append(KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: 5}})
	j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 5}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Pending) != 1 || st.Pending[0].Task.ID != 5 {
		t.Fatalf("pending = %+v, want re-accepted task 5", st.Pending)
	}
	if st.Counters.Completed != 1 || st.Counters.Submitted != 2 {
		t.Errorf("counters = %+v", st.Counters)
	}
}

// TestDestroyDropsPending: destroying an instance tombstones its tasks.
func TestDestroyDropsPending(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1"})
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-2"})
	j.Append(KindAccept, AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: 1}}})
	j.Append(KindAccept, AcceptRec{EPR: "falkon-instance-2", Tasks: []task.Task{{ID: 2}}})
	j.Append(KindDestroy, DestroyRec{EPR: "falkon-instance-1"})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 1 || st.Instances[0].EPR != "falkon-instance-2" {
		t.Fatalf("instances = %+v", st.Instances)
	}
	if len(st.Pending) != 1 || st.Pending[0].Task.ID != 2 {
		t.Fatalf("pending = %+v", st.Pending)
	}
	if st.NextEPR != 2 {
		t.Errorf("NextEPR = %d, want 2 (destroyed EPRs never reissued)", st.NextEPR)
	}
}

// TestTornTail: appending garbage to the live segment must not break
// recovery of the valid prefix, and must never fabricate records.
func TestTornTail(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 1}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(1))
	for _, tail := range [][]byte{
		{0x01},                         // lone torn byte
		{0xff, 0xff, 0xff, 0x7f, 0, 0}, // absurd length, short header
		bytes.Repeat([]byte{0xaa}, 64), // plausible-length garbage
	} {
		data, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(seg, append(data, tail...), 0o644); err != nil {
			t.Fatal(err)
		}
		st, j2, _ := mustRecover(t, dir, testOpts())
		j2.Close()
		if len(st.Pending) != 1 || st.Pending[0].Task.ID != 1 {
			t.Fatalf("tail %x: pending = %+v", tail, st.Pending)
		}
		// restore the clean segment for the next round
		if err := os.WriteFile(seg, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTruncationProperty: truncating the segment at EVERY byte offset
// yields a strict prefix of the original record stream — never a panic,
// never a fabricated record.
func TestTruncationProperty(t *testing.T) {
	var buf []byte
	for i := 0; i < 8; i++ {
		body := AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: task.ID(i + 1)}}}
		var err error
		buf, err = marshalRecord(buf, KindAccept, body)
		if err != nil {
			t.Fatal(err)
		}
	}
	want := decodeAll(buf)
	if len(want) != 8 {
		t.Fatalf("ground truth decoded %d records, want 8", len(want))
	}
	for cut := 0; cut <= len(buf); cut++ {
		got := decodeAll(buf[:cut])
		if len(got) > len(want) {
			t.Fatalf("cut %d: decoded %d > %d records", cut, len(got), len(want))
		}
		for i, rec := range got {
			if rec.kind != want[i].kind || !bytes.Equal(rec.body, want[i].body) {
				t.Fatalf("cut %d: record %d mismatch", cut, i)
			}
		}
	}
}

// TestBitFlipProperty: flipping any single bit yields a (possibly shorter)
// prefix of the original stream up to the flipped record — the CRC rejects
// the damaged record, and decode stops there.
func TestBitFlipProperty(t *testing.T) {
	var buf []byte
	for i := 0; i < 4; i++ {
		var err error
		buf, err = marshalRecord(buf, KindDispatch, DispatchRec{EPR: "falkon-instance-1", ID: task.ID(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
	}
	want := decodeAll(buf)
	for pos := 0; pos < len(buf); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), buf...)
			mut[pos] ^= 1 << bit
			got := decodeAll(mut)
			// Every decoded record must match the original stream prefix,
			// except a record whose length header grew may swallow
			// later bytes — but then its CRC fails, so it is rejected.
			for i, rec := range got {
				if i >= len(want) {
					t.Fatalf("pos %d bit %d: fabricated record %d", pos, bit, i)
				}
				if rec.kind != want[i].kind || !bytes.Equal(rec.body, want[i].body) {
					t.Fatalf("pos %d bit %d: record %d corrupted but accepted", pos, bit, i)
				}
			}
		}
	}
}

func decodeAll(buf []byte) []rawRecord {
	var out []rawRecord
	for {
		rec, rest, ok := nextRecord(buf)
		if !ok {
			return out
		}
		out = append(out, rawRecord{kind: rec.kind, body: append([]byte(nil), rec.body...)})
		buf = rest
	}
}

// TestSnapshotCompaction: rotate + snapshot prunes old segments, and
// recovery folds snapshot + tail.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 1}, {ID: 2}}})

	cut, err := j.Rotate()
	if err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	// Simulate the dispatcher capturing state at the cut: task 1 pending,
	// task 2 pending, instance live.
	snap := &State{
		NextEPR:   1,
		Instances: []Instance{{EPR: epr, Submitted: 2}},
		Pending:   []Pending{{EPR: epr, Task: task.Task{ID: 1}}, {EPR: epr, Task: task.Task{ID: 2}}},
	}
	snap.Counters.Submitted = 2
	if err := j.WriteSnapshot(cut, snap); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(1))); !os.IsNotExist(err) {
		t.Errorf("segment 1 not pruned after snapshot")
	}

	// Post-snapshot tail: complete task 1.
	j.Append(KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: 1}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, j2, info := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if info.SnapshotIndex != cut {
		t.Errorf("recovered from snapshot %d, want %d", info.SnapshotIndex, cut)
	}
	if len(st.Pending) != 1 || st.Pending[0].Task.ID != 2 {
		t.Fatalf("pending = %+v, want just task 2", st.Pending)
	}
	if st.Counters.Completed != 1 || st.Counters.Submitted != 2 {
		t.Errorf("counters = %+v", st.Counters)
	}
	if len(st.Instances) != 1 || len(st.Instances[0].Results) != 1 {
		t.Fatalf("instances = %+v", st.Instances)
	}
}

// TestCorruptSnapshotFallsBack: a damaged newest snapshot falls back to an
// older one plus the segments it still covers.
func TestCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 1}}})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	// Fake a newer corrupt snapshot. Its boundary (99) exceeds every
	// segment, so if recovery trusted it the state would be empty.
	if err := os.WriteFile(filepath.Join(dir, snapName(99)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Pending) != 1 {
		t.Fatalf("pending = %+v, want task 1 recovered despite corrupt snapshot", st.Pending)
	}
}

// TestGroupCommitConcurrent: many goroutines AppendWait concurrently; all
// must become durable, and the group committer should need far fewer
// fsyncs than appends.
func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, Options{Sync: SyncPolicy{Mode: SyncGroup}})
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1"})
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := j.AppendWait(KindAccept, AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: task.ID(id + 1)}}})
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := h.Wait(); err != nil {
				t.Errorf("wait: %v", err)
			}
		}(i)
	}
	wg.Wait()
	appends, fsyncs := j.Appends(), j.Fsyncs()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if appends != n+1 {
		t.Errorf("appends = %d, want %d", appends, n+1)
	}
	if fsyncs >= n {
		t.Errorf("fsyncs = %d for %d appends: group commit not amortizing", fsyncs, n)
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Pending) != n {
		t.Fatalf("recovered %d pending, want %d", len(st.Pending), n)
	}
}

// TestSegmentRotationBySize: small segment cap forces rotation; recovery
// replays across segments.
func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	opts := testOpts()
	opts.SegmentBytes = 256
	_, j, _ := mustRecover(t, dir, opts)
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})
	for i := 0; i < 50; i++ {
		h, _ := j.AppendWait(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: task.ID(i + 1)}}})
		h.Wait() // force a commit per record so size-triggered rotation fires
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := sortedIndexed(OS, dir, "seg-", ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("segments = %v, want rotation to have split them", segs)
	}
	st, j2, info := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Pending) != 50 {
		t.Fatalf("recovered %d pending across %d segments, want 50", len(st.Pending), info.Segments)
	}
}

// TestAbortDropsBufferedBatch: Abort models kill -9 — records still in the
// append buffer are lost, previously committed records survive, and the
// journal never writes after Abort.
func TestAbortDropsBufferedBatch(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	epr := "falkon-instance-1"
	h, err := j.AppendWait(KindInstance, InstanceRec{EPR: epr})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Wait(); err != nil { // first record is committed for sure
		t.Fatal(err)
	}
	j.Abort()
	if err := j.Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 1}}}); err == nil {
		t.Error("Append after Abort succeeded")
	}
	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 1 {
		t.Fatalf("committed instance record lost: %+v", st.Instances)
	}
	if len(st.Pending) != 0 {
		t.Fatalf("pending = %+v, want none", st.Pending)
	}
}

func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	_, j, _, err := Recover(dir, Options{Sync: SyncPolicy{Mode: SyncOff}})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1"})
	rec := DispatchRec{EPR: "falkon-instance-1", ID: 42, Exec: "x1"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Append(KindDispatch, rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALAppendWaitGroupCommit(b *testing.B) {
	dir := b.TempDir()
	_, j, _, err := Recover(dir, Options{Sync: SyncPolicy{Mode: SyncGroup}})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	j.Append(KindInstance, InstanceRec{EPR: "falkon-instance-1"})
	rec := AcceptRec{EPR: "falkon-instance-1", Tasks: []task.Task{{ID: 42}}}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h, err := j.AppendWait(KindAccept, rec)
			if err != nil {
				b.Fatal(err)
			}
			if err := h.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
