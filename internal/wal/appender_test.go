package wal

// Per-shard appender tests: concurrent appenders feed one group-commit
// committer, and recovery must see every task's records in per-task order
// (accept before dispatch before complete) no matter how the committer
// interleaved the appender buffers.

import (
	"fmt"
	"sync"
	"testing"

	"falkon/internal/task"
)

func TestShardedAppendersRecoverExactly(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())

	const shards, perShard = 4, 25
	epr := "falkon-instance-1"
	// Control record through the default appender (the dispatcher's
	// create-instance path) while task records race on shard appenders.
	if h, err := j.AppendWait(KindInstance, InstanceRec{EPR: epr}); err != nil {
		t.Fatal(err)
	} else if err := h.Wait(); err != nil {
		t.Fatal(err)
	}

	apps := j.Appenders(shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			a := apps[s]
			for i := 0; i < perShard; i++ {
				id := task.ID(s*1000 + i + 1)
				h, err := a.AppendWait(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: id}}, Shard: s})
				if err != nil {
					t.Errorf("shard %d accept: %v", s, err)
					return
				}
				if err := h.Wait(); err != nil {
					t.Errorf("shard %d accept wait: %v", s, err)
					return
				}
				a.Append(KindDispatch, DispatchRec{EPR: epr, ID: id, Exec: fmt.Sprintf("x%d", s), Shard: s})
				if i%2 == 0 {
					a.Append(KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: id}, Shard: s})
				}
			}
		}(s)
	}
	wg.Wait()
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	if len(st.Instances) != 1 {
		t.Fatalf("instances = %d, want 1 (control record lost among shard appends)", len(st.Instances))
	}
	// Even-indexed tasks completed; odd-indexed were dispatched and remain
	// pending with one attempt on the clock.
	wantDone := shards * ((perShard + 1) / 2)
	wantPending := shards*perShard - wantDone
	if got := len(st.Instances[0].Results); got != wantDone {
		t.Fatalf("recovered %d results, want %d", got, wantDone)
	}
	if got := len(st.Pending); got != wantPending {
		t.Fatalf("recovered %d pending, want %d", got, wantPending)
	}
	for _, p := range st.Pending {
		if p.Attempts != 1 {
			t.Fatalf("pending task %d has %d attempts, want 1 (dispatch record lost or reordered)", p.Task.ID, p.Attempts)
		}
	}
	if st.Counters.Submitted != int64(shards*perShard) || st.Counters.Completed != int64(wantDone) {
		t.Fatalf("counters = %+v", st.Counters)
	}
}

// TestAppenderFIFOWithinShard pins the per-appender ordering contract the
// dispatcher's accept<dispatch<complete sequencing relies on: records pushed
// through one appender replay in push order even when other appenders commit
// in the same batches.
func TestAppenderFIFOWithinShard(t *testing.T) {
	dir := t.TempDir()
	_, j, _ := mustRecover(t, dir, testOpts())
	apps := j.Appenders(2)
	epr := "falkon-instance-1"
	j.Append(KindInstance, InstanceRec{EPR: epr})

	// Shard 0 runs task 1 through its whole life; shard 1 interleaves
	// appends the committer batches alongside.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			apps[1].Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: task.ID(2000 + i)}}, Shard: 1})
		}
	}()
	apps[0].Append(KindAccept, AcceptRec{EPR: epr, Tasks: []task.Task{{ID: 1}}, Shard: 0})
	apps[0].Append(KindDispatch, DispatchRec{EPR: epr, ID: 1, Exec: "x0", Shard: 0})
	apps[0].Append(KindComplete, CompleteRec{EPR: epr, Result: task.Result{ID: 1, Stdout: "ok"}, Shard: 0})
	<-done
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	st, j2, _ := mustRecover(t, dir, testOpts())
	defer j2.Close()
	rs := st.Instances[0].Results
	if len(rs) != 1 || rs[0].ID != 1 || rs[0].Stdout != "ok" {
		t.Fatalf("task 1 lifecycle did not replay in order: results = %+v", rs)
	}
	if len(st.Pending) != 100 {
		t.Fatalf("pending = %d, want the 100 shard-1 accepts", len(st.Pending))
	}
}
