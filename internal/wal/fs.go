package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the journal's view of one writable file. It is the narrow
// surface the committer, rotation, and snapshot paths touch, which makes
// it the natural seam for fault injection: a wrapped File can fail a
// Sync, tear a Write, or slow the disk without the journal knowing.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the journal's filesystem surface. Every file operation the
// journal performs — segment creation, snapshot tmp/rename, pruning,
// directory scans, recovery reads — goes through an FS, so tests and the
// chaos harness can interpose failures (fsync errors, ENOSPC, torn
// appends, slow disk) at exactly the boundary a real disk would produce
// them. The default implementation is the real OS filesystem.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string, perm os.FileMode) error
	// Create opens name for writing. excl refuses an existing file
	// (segments must be fresh); otherwise the file is truncated
	// (snapshot tmp files are overwritten).
	Create(name string, excl bool) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory.
	ReadDir(dir string) ([]os.DirEntry, error)
	// ReadFile reads a whole file (recovery path).
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// OS is the real filesystem — the FS every production journal uses.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string, perm os.FileMode) error { return os.MkdirAll(dir, perm) }

func (osFS) Create(name string, excl bool) (File, error) {
	flag := os.O_CREATE | os.O_WRONLY
	if excl {
		flag |= os.O_EXCL
	} else {
		flag |= os.O_TRUNC
	}
	return os.OpenFile(name, flag, 0o644)
}

func (osFS) Rename(oldpath, newpath string) error        { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                    { return os.Remove(name) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)   { return os.ReadDir(dir) }
func (osFS) ReadFile(name string) ([]byte, error)        { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
