package wal

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"falkon/internal/metrics"
	"falkon/internal/obs"
)

// SyncMode selects when appended records are fsynced.
type SyncMode uint8

const (
	// SyncGroup fsyncs every commit batch: concurrent appenders landing in
	// the same batch share one fsync (group commit), and AppendWait
	// releases only after the sync — full durability.
	SyncGroup SyncMode = iota
	// SyncInterval writes batches promptly but fsyncs on a timer;
	// AppendWait releases after the OS write. A crash loses at most one
	// interval of OS-buffered records.
	SyncInterval
	// SyncOff never fsyncs; the OS flushes at its leisure. Survives process
	// crashes (kill -9) but not power loss.
	SyncOff
)

// SyncPolicy pairs a mode with its interval (SyncInterval only).
type SyncPolicy struct {
	Mode     SyncMode
	Interval time.Duration
}

// String renders the policy the way ParseSyncPolicy reads it.
func (p SyncPolicy) String() string {
	switch p.Mode {
	case SyncGroup:
		return "group"
	case SyncOff:
		return "off"
	default:
		return p.Interval.String()
	}
}

// ParseSyncPolicy reads a -journal-sync flag value: "group" (default),
// "off", or an fsync interval such as "100ms".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.TrimSpace(s) {
	case "", "group", "always":
		return SyncPolicy{Mode: SyncGroup}, nil
	case "off", "never", "none":
		return SyncPolicy{Mode: SyncOff}, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d <= 0 {
		return SyncPolicy{}, fmt.Errorf("wal: bad sync policy %q (want group, off, or a positive interval)", s)
	}
	return SyncPolicy{Mode: SyncInterval, Interval: d}, nil
}

// Options configures a Journal.
type Options struct {
	// Sync selects the fsync policy (default group commit).
	Sync SyncPolicy
	// SegmentBytes rotates segments past this size (default 16 MiB).
	SegmentBytes int64
	// Metrics receives the journal's instruments (falkon_wal_*); nil keeps
	// them unregistered.
	Metrics *obs.Registry
	// Logf receives journal logs; nil silences them.
	Logf func(format string, args ...any)
	// FS is the filesystem the journal writes through (default the real
	// OS). Tests and the chaos harness substitute a fault-injecting FS.
	FS FS
	// OnError, when set, is invoked once with the journal's first sticky
	// I/O error. A journal that cannot write is fail-stop: daemons use
	// this hook to crash and let recovery replay the intact prefix.
	OnError func(error)
	// Mirror, when set, receives every committed batch of framed records
	// immediately after its write (and fsync, per the sync policy) succeeds
	// and before any AppendWait waiter is released — so a handler that
	// passed its durability barrier can rely on the batch already being
	// visible to the replication stream. Calls are serialized in exact file
	// order (the committer and Rotate both invoke it under the write
	// mutex). The batch aliases an internal buffer and is valid only for
	// the duration of the call; implementations copy what they keep.
	Mirror func(batch []byte)
}

// Handle represents one AppendWait's durability barrier.
type Handle struct{ w *waiter }

// Wait blocks until the record is committed per the sync policy and
// returns the write error, if any. The zero Handle waits for nothing.
func (h Handle) Wait() error {
	if h.w == nil {
		return nil
	}
	<-h.w.ch
	return h.w.err
}

type waiter struct {
	err error
	ch  chan struct{}
}

// Journal is a segmented append-only write-ahead log. Appends are buffered
// in per-shard Appenders under short per-appender mutexes and flushed by a
// single committer goroutine, so many concurrent appenders amortize one
// write+fsync (group commit) without contending on one buffer lock. Only
// the committer and Rotate touch the segment files.
type Journal struct {
	dir  string
	opts Options

	cAppends *metrics.Counter
	cFsyncs  *metrics.Counter
	cBytes   *metrics.Counter
	gSegs    *metrics.Gauge
	hCommit  *metrics.FixedHistogram

	fs FS

	// wmu serializes file writes and rotation; mu guards the appender list,
	// segment pointer, and lifecycle state. Record appends take only their
	// Appender's own mutex (never block on I/O or on each other).
	wmu sync.Mutex
	mu  sync.Mutex
	// apps are every Appender ever handed out; def (== apps[0]) is the
	// journal's default appender behind Append/AppendWait. A commit drains
	// appenders in index order, which is what makes cross-appender record
	// ordering within one batch deterministic (see Appenders).
	apps []*Appender
	def  *Appender
	// scratch assembles one commit batch from the appender buffers so the
	// segment sees a single write per commit.
	scratch  []byte
	seg      File
	segIndex uint64
	segSize  int64
	err      error // sticky I/O error: the journal fails closed
	erred    bool  // OnError already fired
	closed   bool
	// bad flips once the journal can no longer accept appends (closed or
	// sticky error): the appenders' fast-path reject check.
	bad atomic.Bool

	kick chan struct{}
	stop chan struct{}
	done chan struct{}
}

// Appender is one shard's append buffer into the journal. Appenders are
// independent FIFOs: records appended through one Appender commit in append
// order, while records on different Appenders only order by commit batch
// (within a batch, lower appender index first). Callers that need two
// records ordered (a task's accept before its dispatch before its complete)
// must route them through the same Appender.
type Appender struct {
	j *Journal

	mu  sync.Mutex
	buf []byte
	ws  []*waiter
	// spare recycles the drained append buffer, so steady-state appends
	// never grow a fresh array.
	spare []byte
	// dead marks the final drain (close/abort): late appends fail instead
	// of parking records in a buffer no commit will ever visit.
	dead bool
}

// Append buffers one record without waiting for durability (see
// Journal.Append).
func (a *Appender) Append(kind Kind, v any) error {
	_, err := a.append(kind, v, false)
	return err
}

// AppendWait buffers one record and returns its durability Handle (see
// Journal.AppendWait).
func (a *Appender) AppendWait(kind Kind, v any) (Handle, error) {
	return a.append(kind, v, true)
}

func (a *Appender) append(kind Kind, v any, wait bool) (Handle, error) {
	j := a.j
	if j.bad.Load() {
		return Handle{}, j.stickyErr()
	}
	a.mu.Lock()
	if a.dead {
		a.mu.Unlock()
		return Handle{}, j.stickyErr()
	}
	var err error
	a.buf, err = marshalRecord(a.buf, kind, v)
	if err != nil {
		a.mu.Unlock()
		return Handle{}, err
	}
	var h Handle
	if wait {
		w := &waiter{ch: make(chan struct{})}
		a.ws = append(a.ws, w)
		h = Handle{w: w}
	}
	a.mu.Unlock()
	j.cAppends.Inc()
	select {
	case j.kick <- struct{}{}:
	default:
	}
	return h, nil
}

// take removes the appender's buffered batch, optionally sealing it against
// further appends (the final drain of close/abort).
func (a *Appender) take(final bool) (buf []byte, ws []*waiter) {
	a.mu.Lock()
	buf, ws = a.buf, a.ws
	a.buf, a.spare = a.spare[:0], nil
	a.ws = nil
	if final {
		a.dead = true
	}
	a.mu.Unlock()
	return buf, ws
}

// recycle returns a drained buffer for reuse (bounded so one burst doesn't
// park megabytes per appender).
func (a *Appender) recycle(buf []byte) {
	if cap(buf) > 1<<20 {
		return
	}
	a.mu.Lock()
	if a.spare == nil {
		a.spare = buf[:0]
	}
	a.mu.Unlock()
}

// stickyErr reports why the journal rejects appends.
func (j *Journal) stickyErr() error {
	j.mu.Lock()
	err := j.err
	j.mu.Unlock()
	if err == nil {
		err = fmt.Errorf("wal: journal closed")
	}
	return err
}

// Appenders grows the appender set to n (minimum 1) and returns it. The
// sharded dispatcher takes one appender per scheduling shard so hot-path
// appends never contend on a single buffer mutex; appender 0 doubles as the
// journal's own default (Journal.Append) and carries control records.
// Within one commit batch, appender 0's records land before appender 1's
// and so on — cross-appender ordering beyond that is by batch only.
func (j *Journal) Appenders(n int) []*Appender {
	if n < 1 {
		n = 1
	}
	j.mu.Lock()
	for len(j.apps) < n {
		j.apps = append(j.apps, &Appender{j: j})
	}
	apps := j.apps[:n]
	j.mu.Unlock()
	return apps
}

// appenders snapshots the current appender list.
func (j *Journal) appenders() []*Appender {
	j.mu.Lock()
	apps := j.apps
	j.mu.Unlock()
	return apps
}

const defaultSegmentBytes = 16 << 20

func segName(i uint64) string  { return fmt.Sprintf("seg-%08d.wal", i) }
func snapName(i uint64) string { return fmt.Sprintf("snap-%08d.snap", i) }

// parseIndexed extracts the index from "prefix-XXXXXXXX.ext" names.
func parseIndexed(name, prefix, ext string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, ext) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(ext)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// open creates a journal appending to a fresh segment numbered next. It is
// called by Recover, which chooses next past every existing segment.
func open(dir string, next uint64, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = defaultSegmentBytes
	}
	if opts.FS == nil {
		opts.FS = OS
	}
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	j := &Journal{
		dir:      dir,
		fs:       opts.FS,
		opts:     opts,
		cAppends: opts.Metrics.Counter("falkon_wal_appends_total"),
		cFsyncs:  opts.Metrics.Counter("falkon_wal_fsyncs_total"),
		cBytes:   opts.Metrics.Counter("falkon_wal_bytes_total"),
		gSegs:    opts.Metrics.Gauge("falkon_wal_segments"),
		hCommit:  opts.Metrics.Histogram("falkon_wal_commit_seconds"),
		kick:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	j.def = &Appender{j: j}
	j.apps = []*Appender{j.def}
	seg, err := j.createSegment(next)
	if err != nil {
		return nil, err
	}
	j.seg, j.segIndex = seg, next
	j.refreshSegGauge()
	go j.run()
	return j, nil
}

func (j *Journal) logf(format string, args ...any) {
	if j.opts.Logf != nil {
		j.opts.Logf(format, args...)
	}
}

func (j *Journal) createSegment(i uint64) (File, error) {
	f, err := j.fs.Create(filepath.Join(j.dir, segName(i)), true)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	return f, nil
}

// Append buffers one record on the default appender without waiting for
// durability. Used for the advisory transitions (dispatch, complete):
// losing the tail only means a task re-runs, and downstream dedupe keeps
// delivery exactly-once.
func (j *Journal) Append(kind Kind, v any) error {
	return j.def.Append(kind, v)
}

// AppendWait buffers one record on the default appender and returns a
// Handle whose Wait releases once the record is committed per the sync
// policy. Used for transitions that must be durable before they are
// acknowledged (instance creation, task acceptance).
func (j *Journal) AppendWait(kind Kind, v any) (Handle, error) {
	return j.def.AppendWait(kind, v)
}

// run is the committer loop: drain the appender buffers, write them as one
// batch, fsync per policy, release the batch's waiters.
func (j *Journal) run() {
	defer close(j.done)
	var tickC <-chan time.Time
	if j.opts.Sync.Mode == SyncInterval {
		t := time.NewTicker(j.opts.Sync.Interval)
		defer t.Stop()
		tickC = t.C
	}
	for {
		select {
		case <-j.stop:
			j.commit(true, true)
			return
		case <-j.kick:
			j.commit(j.opts.Sync.Mode == SyncGroup, false)
		case <-tickC:
			j.commit(true, false)
		}
	}
}

// commit drains every appender (index order), writes the concatenated
// batch, and optionally fsyncs. File I/O runs under wmu only, so appenders
// never block behind a sync. final seals the appenders (close/shutdown):
// any append racing the last commit fails instead of parking.
func (j *Journal) commit(sync, final bool) {
	j.wmu.Lock()
	apps := j.appenders()
	j.mu.Lock()
	batch := j.scratch[:0]
	seg, err := j.seg, j.err
	j.mu.Unlock()
	var ws []*waiter
	for _, a := range apps {
		buf, aws := a.take(final)
		batch = append(batch, buf...)
		ws = append(ws, aws...)
		a.recycle(buf)
	}

	wrote := false
	ioStart := time.Now()
	if err == nil && len(batch) > 0 {
		_, err = seg.Write(batch)
		if err == nil {
			wrote = true
			j.cBytes.Add(int64(len(batch)))
		}
	}
	if err == nil && sync && wrote && j.opts.Sync.Mode != SyncOff {
		err = seg.Sync()
		j.cFsyncs.Inc()
	}
	if wrote {
		// One group-commit batch's write + fsync: the committer-side half of
		// the wal_wait appenders observe.
		j.hCommit.Observe(time.Since(ioStart).Seconds())
	}
	if wrote && err == nil && j.opts.Mirror != nil {
		// Still under wmu: mirror calls land in exact file order, and every
		// waiter released below observes its batch already streamed.
		j.opts.Mirror(batch)
	}
	j.wmu.Unlock()

	j.mu.Lock()
	if err != nil && j.err == nil {
		j.err = err
		j.bad.Store(true)
	}
	fireErr := err != nil && !j.erred && !j.closed
	if fireErr {
		j.erred = true
	}
	if cap(batch) <= 8<<20 {
		j.scratch = batch[:0]
	} else {
		j.scratch = nil
	}
	grown := false
	if wrote {
		j.segSize += int64(len(batch))
		grown = j.segSize >= j.opts.SegmentBytes
	}
	j.mu.Unlock()
	if err != nil {
		j.logf("wal: commit: %v", err)
	}
	if fireErr && j.opts.OnError != nil {
		j.opts.OnError(err)
	}
	for _, w := range ws {
		w.err = err
		close(w.ch)
	}
	if grown {
		if _, rerr := j.Rotate(); rerr != nil {
			j.logf("wal: rotate: %v", rerr)
		}
	}
}

// Rotate seals the current segment (flushing and fsyncing any buffered
// records from every appender into it) and opens the next. It returns the
// new segment's index: every record appended before the call is in a
// segment below that index, which is the snapshot boundary invariant
// WriteSnapshot relies on.
func (j *Journal) Rotate() (uint64, error) {
	j.wmu.Lock()
	defer j.wmu.Unlock()
	apps := j.appenders()
	j.mu.Lock()
	seg, next := j.seg, j.segIndex+1
	closed := j.closed
	j.mu.Unlock()
	var buf []byte
	var ws []*waiter
	for _, a := range apps {
		abuf, aws := a.take(closed)
		buf = append(buf, abuf...)
		ws = append(ws, aws...)
		a.recycle(abuf)
	}
	if closed {
		err := fmt.Errorf("wal: journal closed")
		for _, w := range ws {
			w.err = err
			close(w.ch)
		}
		return 0, err
	}

	var err error
	if len(buf) > 0 {
		if _, err = seg.Write(buf); err == nil {
			j.cBytes.Add(int64(len(buf)))
		}
	}
	if err == nil && j.opts.Sync.Mode != SyncOff {
		err = seg.Sync()
		j.cFsyncs.Inc()
	}
	if err == nil && len(buf) > 0 && j.opts.Mirror != nil {
		j.opts.Mirror(buf) // under wmu, same ordering contract as commit
	}
	for _, w := range ws {
		w.err = err
		close(w.ch)
	}
	if err != nil {
		j.noteErr(err)
		return 0, err
	}
	newSeg, err := j.createSegment(next)
	if err != nil {
		j.noteErr(err)
		return 0, err
	}
	seg.Close()
	j.mu.Lock()
	j.seg, j.segIndex, j.segSize = newSeg, next, 0
	j.mu.Unlock()
	j.refreshSegGauge()
	return next, nil
}

func (j *Journal) noteErr(err error) {
	j.mu.Lock()
	if j.err == nil {
		j.err = err
		j.bad.Store(true)
	}
	fire := !j.erred && !j.closed
	if fire {
		j.erred = true
	}
	j.mu.Unlock()
	if fire && j.opts.OnError != nil {
		j.opts.OnError(err)
	}
}

// refreshSegGauge recounts on-disk segments (cheap: one readdir).
func (j *Journal) refreshSegGauge() {
	ents, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return
	}
	n := 0
	for _, e := range ents {
		if _, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok {
			n++
		}
	}
	j.gSegs.Set(int64(n))
}

// Appends and Fsyncs expose the journal's lifetime counters for stats.
func (j *Journal) Appends() int64 { return j.cAppends.Value() }
func (j *Journal) Fsyncs() int64  { return j.cFsyncs.Value() }

// Close flushes and fsyncs everything buffered, then seals the journal.
// Safe to call twice.
func (j *Journal) Close() error {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return nil
	}
	j.closed = true
	j.bad.Store(true)
	j.mu.Unlock()
	close(j.stop)
	<-j.done
	j.wmu.Lock()
	defer j.wmu.Unlock()
	if j.opts.Sync.Mode != SyncGroup && j.err == nil {
		j.seg.Sync() // interval/off modes: make the seal durable anyway
	}
	err := j.seg.Close()
	if j.err != nil {
		return j.err
	}
	return err
}

// Abort closes the journal without flushing its in-memory batch — the
// crash-simulation path used by tests: only records the committer already
// wrote survive, exactly as after a kill -9.
func (j *Journal) Abort() {
	j.mu.Lock()
	if j.closed {
		j.mu.Unlock()
		<-j.done
		return
	}
	j.closed = true
	if j.err == nil {
		j.err = fmt.Errorf("wal: aborted")
	}
	j.bad.Store(true)
	j.mu.Unlock()
	// Drop every appender's unwritten batch: a crash would have lost it.
	// Sealing (final take) makes racing appends fail instead of parking
	// records no commit will visit.
	for _, a := range j.appenders() {
		buf, ws := a.take(true)
		_ = buf
		for _, w := range ws {
			w.err = fmt.Errorf("wal: aborted")
			close(w.ch)
		}
	}
	close(j.stop)
	<-j.done
	j.wmu.Lock()
	j.seg.Close()
	j.wmu.Unlock()
}

// WriteSnapshot durably stores st as the snapshot covering every segment
// below boundary (the index returned by Rotate), then prunes segments and
// snapshots the new snapshot supersedes. The write is atomic: tmp file,
// fsync, rename, directory fsync.
func (j *Journal) WriteSnapshot(boundary uint64, st *State) error {
	frame, err := marshalRecord(nil, KindSnapshot, st)
	if err != nil {
		return err
	}
	tmp := filepath.Join(j.dir, "snap.tmp")
	f, err := j.fs.Create(tmp, false)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err = f.Write(frame); err == nil && j.opts.Sync.Mode != SyncOff {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	final := filepath.Join(j.dir, snapName(boundary))
	if err := j.fs.Rename(tmp, final); err != nil {
		j.fs.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if j.opts.Sync.Mode != SyncOff {
		j.fs.SyncDir(j.dir)
	}
	j.prune(boundary)
	j.refreshSegGauge()
	return nil
}

// prune removes segments and snapshots wholly covered by the snapshot at
// boundary.
func (j *Journal) prune(boundary uint64) {
	ents, err := j.fs.ReadDir(j.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		if n, ok := parseIndexed(e.Name(), "seg-", ".wal"); ok && n < boundary {
			j.fs.Remove(filepath.Join(j.dir, e.Name()))
		}
		if n, ok := parseIndexed(e.Name(), "snap-", ".snap"); ok && n < boundary {
			j.fs.Remove(filepath.Join(j.dir, e.Name()))
		}
	}
}

// sortedIndexed lists the indices of dir entries matching prefix/ext in
// ascending order.
func sortedIndexed(fsys FS, dir, prefix, ext string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []uint64
	for _, e := range ents {
		if n, ok := parseIndexed(e.Name(), prefix, ext); ok {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}
