// Package provision implements the Falkon provisioner: it monitors
// dispatcher state and acquires or releases executors according to the
// paper's resource acquisition and release policies (§3.1).
package provision

import "fmt"

// AcquisitionPolicy splits a need for n additional executors into the
// allocation request sizes to issue, mirroring the paper's five strategies:
// one request for n resources, n requests for one resource, arithmetically
// or exponentially increasing series, or a system-function bound on
// available resources.
type AcquisitionPolicy interface {
	// Requests returns the allocation sizes (each >= 1, summing to >= 0)
	// used to satisfy a need of n executors. Policies may return fewer than
	// n in total (e.g. Available with few free nodes); the provisioner asks
	// again on its next poll.
	Requests(need int) []int
	// Name identifies the policy in logs and experiment output.
	Name() string
}

// allAtOnce issues a single request for everything needed — the policy used
// in all of the paper's experiments.
type allAtOnce struct{}

// AllAtOnce returns the single-request acquisition policy.
func AllAtOnce() AcquisitionPolicy { return allAtOnce{} }

func (allAtOnce) Name() string { return "all-at-once" }

func (allAtOnce) Requests(need int) []int {
	if need <= 0 {
		return nil
	}
	return []int{need}
}

// oneAtATime issues n single-resource requests.
type oneAtATime struct{}

// OneAtATime returns the n-single-requests acquisition policy.
func OneAtATime() AcquisitionPolicy { return oneAtATime{} }

func (oneAtATime) Name() string { return "one-at-a-time" }

func (oneAtATime) Requests(need int) []int {
	if need <= 0 {
		return nil
	}
	out := make([]int, need)
	for i := range out {
		out[i] = 1
	}
	return out
}

// additive issues arithmetically growing requests: k, 2k, 3k, ...
type additive struct{ step int }

// Additive returns the arithmetically-increasing acquisition policy with
// the given first step (>= 1).
func Additive(step int) AcquisitionPolicy {
	if step < 1 {
		panic(fmt.Sprintf("provision: additive step %d < 1", step))
	}
	return additive{step: step}
}

func (a additive) Name() string { return fmt.Sprintf("additive-%d", a.step) }

func (a additive) Requests(need int) []int {
	var out []int
	for size, got := a.step, 0; got < need; size += a.step {
		if size > need-got {
			size = need - got
		}
		out = append(out, size)
		got += size
	}
	return out
}

// exponential issues exponentially growing requests: 1, 2, 4, 8, ...
type exponential struct{}

// Exponential returns the exponentially-increasing acquisition policy.
func Exponential() AcquisitionPolicy { return exponential{} }

func (exponential) Name() string { return "exponential" }

func (exponential) Requests(need int) []int {
	var out []int
	for size, got := 1, 0; got < need; size *= 2 {
		if size > need-got {
			size = need - got
		}
		out = append(out, size)
		got += size
	}
	return out
}

// available caps a single request by a system function reporting free
// resources (the paper's fifth strategy).
type available struct {
	free func() int
}

// Available returns the system-function acquisition policy; free reports
// how many resources the LRM could satisfy right now.
func Available(free func() int) AcquisitionPolicy {
	if free == nil {
		panic("provision: nil free function")
	}
	return available{free: free}
}

func (available) Name() string { return "available" }

func (a available) Requests(need int) []int {
	if need <= 0 {
		return nil
	}
	if f := a.free(); f < need {
		need = f
	}
	if need <= 0 {
		return nil
	}
	return []int{need}
}

// ReleasePolicy selects how resources are released (§3.1).
type ReleasePolicy uint8

const (
	// ReleaseDistributed lets each executor release itself after a
	// configured idle time — the policy used in the paper's experiments.
	ReleaseDistributed ReleasePolicy = iota
	// ReleaseCentralized releases allocations from the provisioner when the
	// dispatcher queue drops below a threshold.
	ReleaseCentralized
	// ReleaseNever retains resources forever (the paper's Falkon-∞).
	ReleaseNever
)

// String names the policy.
func (p ReleasePolicy) String() string {
	switch p {
	case ReleaseDistributed:
		return "distributed"
	case ReleaseCentralized:
		return "centralized"
	case ReleaseNever:
		return "never"
	default:
		return fmt.Sprintf("release(%d)", uint8(p))
	}
}
