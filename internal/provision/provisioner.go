package provision

import (
	"fmt"
	"sync"
	"time"

	"falkon/internal/fproto"
	"falkon/internal/metrics"
	"falkon/internal/obs"
)

// Allocator abstracts the resource-allocation pathway (the paper uses GRAM4
// over an LRM; the live runtime uses a local allocator; the simulator uses
// a virtual-time LRM model).
type Allocator interface {
	// Allocate requests one allocation of n executors, each configured with
	// the given distributed idle timeout (0 = no self-release). It returns
	// an allocation id. Executors start asynchronously.
	Allocate(n int, idleTimeout time.Duration) (string, error)
	// Deallocate tears down every executor in the allocation.
	Deallocate(id string) error
	// Counts reports executors alive and executors still starting up across
	// all allocations from this allocator.
	Counts() (alive, pending int)
}

// StatsSource reports current dispatcher state (a direct pointer in-process
// or an RPC shim remotely).
type StatsSource func() (fproto.StatsReply, error)

// Options configures a Provisioner.
type Options struct {
	// Stats polls dispatcher state.
	Stats StatsSource
	// Allocator issues and revokes allocations.
	Allocator Allocator
	// Acquisition chooses request sizes (default AllAtOnce, as in the
	// paper's experiments).
	Acquisition AcquisitionPolicy
	// Release selects the release policy (default ReleaseDistributed).
	Release ReleasePolicy
	// IdleTimeout is the distributed release idle time (Falkon-15 used
	// 15 s, etc.). Ignored for other release policies.
	IdleTimeout time.Duration
	// QueueThreshold releases an allocation when queued tasks fall below it
	// (centralized policy only).
	QueueThreshold int
	// MinExecutors and MaxExecutors bound the pool (paper: 0 and 32 for the
	// synthetic workload experiments).
	MinExecutors int
	MaxExecutors int
	// PollInterval is how often the provisioner polls dispatcher state
	// (default 1 s; tests use shorter).
	PollInterval time.Duration
	// Logf receives provisioner logs; nil silences them.
	Logf func(format string, args ...any)
	// Metrics, when set, receives allocation/release counters and a live
	// allocation gauge.
	Metrics *obs.Registry
}

// Provisioner drives dynamic resource provisioning for one dispatcher.
type Provisioner struct {
	opts Options

	cAlloc    *metrics.Counter // falkon_provision_allocations_total
	cRelease  *metrics.Counter // falkon_provision_releases_total
	cRequests *metrics.Counter // falkon_provision_executors_requested_total
	gLive     *metrics.Gauge   // falkon_provision_allocations_live

	mu          sync.Mutex
	allocations []string
	requested   int // executors requested over all time
	releases    int
	stopped     bool

	stop chan struct{}
	done chan struct{}
}

// New validates options and returns an unstarted provisioner.
func New(opts Options) (*Provisioner, error) {
	if opts.Stats == nil {
		return nil, fmt.Errorf("provision: nil stats source")
	}
	if opts.Allocator == nil {
		return nil, fmt.Errorf("provision: nil allocator")
	}
	if opts.Acquisition == nil {
		opts.Acquisition = AllAtOnce()
	}
	if opts.MaxExecutors <= 0 {
		return nil, fmt.Errorf("provision: MaxExecutors must be positive")
	}
	if opts.MinExecutors < 0 || opts.MinExecutors > opts.MaxExecutors {
		return nil, fmt.Errorf("provision: invalid MinExecutors %d", opts.MinExecutors)
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = time.Second
	}
	p := &Provisioner{
		opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	// A nil registry hands back unregistered instruments, so the hot path
	// needs no guards.
	p.cAlloc = opts.Metrics.Counter("falkon_provision_allocations_total")
	p.cRelease = opts.Metrics.Counter("falkon_provision_releases_total")
	p.cRequests = opts.Metrics.Counter("falkon_provision_executors_requested_total")
	p.gLive = opts.Metrics.Gauge("falkon_provision_allocations_live")
	return p, nil
}

// Start begins the polling loop.
func (p *Provisioner) Start() {
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.opts.PollInterval)
		defer tick.Stop()
		p.poll() // immediate first evaluation
		for {
			select {
			case <-p.stop:
				return
			case <-tick.C:
				p.poll()
			}
		}
	}()
}

// Stop halts the loop. It does not tear down live allocations; call
// ReleaseAll for that.
func (p *Provisioner) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		<-p.done
		return
	}
	p.stopped = true
	p.mu.Unlock()
	close(p.stop)
	<-p.done
}

// Allocations returns the number of allocation requests issued so far (the
// paper's Table 4 "resource allocations" row).
func (p *Provisioner) Allocations() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.allocations) + p.releases
}

// logf logs through the configured sink.
func (p *Provisioner) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

// poll performs one evaluate/acquire/release cycle.
func (p *Provisioner) poll() {
	st, err := p.opts.Stats()
	if err != nil {
		p.logf("provision: stats: %v", err)
		return
	}
	alive, pending := p.opts.Allocator.Counts()
	have := alive + pending

	// Demand: one executor per queued or in-flight task (the workload's
	// instantaneous width), bounded by the configured pool size.
	demand := st.Queued + st.Outstanding
	if demand < p.opts.MinExecutors {
		demand = p.opts.MinExecutors
	}
	if demand > p.opts.MaxExecutors {
		demand = p.opts.MaxExecutors
	}

	if need := demand - have; need > 0 {
		for _, n := range p.opts.Acquisition.Requests(need) {
			id, err := p.opts.Allocator.Allocate(n, p.idleTimeout())
			if err != nil {
				p.logf("provision: allocate %d: %v", n, err)
				break
			}
			p.mu.Lock()
			p.allocations = append(p.allocations, id)
			p.requested += n
			p.mu.Unlock()
			p.cAlloc.Inc()
			p.cRequests.Add(int64(n))
			p.gLive.Add(1)
			p.logf("provision: allocated %s (%d executors)", id, n)
		}
	}

	// Centralized release: when the queue is below threshold and nothing is
	// pending, drop allocations (most recent first) down to MinExecutors.
	if p.opts.Release == ReleaseCentralized && st.Queued < p.opts.QueueThreshold && st.Outstanding == 0 && alive > p.opts.MinExecutors {
		p.mu.Lock()
		var id string
		if n := len(p.allocations); n > 0 {
			id = p.allocations[n-1]
			p.allocations = p.allocations[:n-1]
			p.releases++
		}
		p.mu.Unlock()
		if id != "" {
			p.cRelease.Inc()
			p.gLive.Add(-1)
			if err := p.opts.Allocator.Deallocate(id); err != nil {
				p.logf("provision: deallocate %s: %v", id, err)
			} else {
				p.logf("provision: released allocation %s", id)
			}
		}
	}
}

// idleTimeout returns the distributed-release timeout to configure on new
// executors.
func (p *Provisioner) idleTimeout() time.Duration {
	if p.opts.Release == ReleaseDistributed {
		return p.opts.IdleTimeout
	}
	return 0
}

// ReleaseAll deallocates everything (shutdown path).
func (p *Provisioner) ReleaseAll() {
	p.mu.Lock()
	ids := p.allocations
	p.allocations = nil
	p.releases += len(ids)
	p.mu.Unlock()
	p.cRelease.Add(int64(len(ids)))
	p.gLive.Add(int64(-len(ids)))
	for _, id := range ids {
		if err := p.opts.Allocator.Deallocate(id); err != nil {
			p.logf("provision: deallocate %s: %v", id, err)
		}
	}
}
