package provision_test

import (
	"sync"
	"testing"
	"time"

	"falkon/internal/client"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/fproto"
	"falkon/internal/provision"
	"falkon/internal/task"
)

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestAllAtOncePolicy(t *testing.T) {
	p := provision.AllAtOnce()
	if got := p.Requests(32); len(got) != 1 || got[0] != 32 {
		t.Fatalf("requests = %v", got)
	}
	if got := p.Requests(0); got != nil {
		t.Fatalf("requests(0) = %v", got)
	}
	if p.Name() != "all-at-once" {
		t.Fatal("name")
	}
}

func TestOneAtATimePolicy(t *testing.T) {
	p := provision.OneAtATime()
	got := p.Requests(5)
	if len(got) != 5 || sum(got) != 5 {
		t.Fatalf("requests = %v", got)
	}
	for _, n := range got {
		if n != 1 {
			t.Fatalf("requests = %v", got)
		}
	}
}

func TestAdditivePolicy(t *testing.T) {
	p := provision.Additive(2)
	got := p.Requests(12)
	// 2, 4, 6 = 12.
	want := []int{2, 4, 6}
	if len(got) != len(want) {
		t.Fatalf("requests = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("requests = %v, want %v", got, want)
		}
	}
	// Last request clamps to the remaining need.
	got = p.Requests(5)
	if sum(got) != 5 {
		t.Fatalf("requests = %v, sum != 5", got)
	}
}

func TestAdditiveValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Additive(0) did not panic")
		}
	}()
	provision.Additive(0)
}

func TestExponentialPolicy(t *testing.T) {
	p := provision.Exponential()
	got := p.Requests(10)
	// 1, 2, 4, 3 (clamped).
	want := []int{1, 2, 4, 3}
	if len(got) != len(want) || sum(got) != 10 {
		t.Fatalf("requests = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("requests = %v, want %v", got, want)
		}
	}
}

func TestAvailablePolicy(t *testing.T) {
	p := provision.Available(func() int { return 3 })
	if got := p.Requests(10); len(got) != 1 || got[0] != 3 {
		t.Fatalf("requests = %v", got)
	}
	none := provision.Available(func() int { return 0 })
	if got := none.Requests(10); got != nil {
		t.Fatalf("requests with no free = %v", got)
	}
}

// Property-ish sweep: every policy's requests sum to at most the need and
// are each positive.
func TestPoliciesConserveNeed(t *testing.T) {
	policies := []provision.AcquisitionPolicy{
		provision.AllAtOnce(),
		provision.OneAtATime(),
		provision.Additive(3),
		provision.Exponential(),
		provision.Available(func() int { return 1 << 20 }),
	}
	for _, p := range policies {
		for need := 0; need <= 100; need++ {
			got := p.Requests(need)
			if s := sum(got); s != need {
				t.Fatalf("%s.Requests(%d) sums to %d", p.Name(), need, s)
			}
			for _, n := range got {
				if n <= 0 {
					t.Fatalf("%s.Requests(%d) contains %d", p.Name(), need, n)
				}
			}
		}
	}
}

func TestReleasePolicyString(t *testing.T) {
	if provision.ReleaseDistributed.String() != "distributed" ||
		provision.ReleaseCentralized.String() != "centralized" ||
		provision.ReleaseNever.String() != "never" {
		t.Fatal("release policy names")
	}
	if provision.ReleasePolicy(9).String() != "release(9)" {
		t.Fatal("unknown release policy name")
	}
}

// fakeAllocator records allocation calls for policy-level provisioner
// tests.
type fakeAllocator struct {
	mu      sync.Mutex
	allocs  map[string]int
	nextID  int
	alive   int
	dealloc []string
}

func (f *fakeAllocator) Allocate(n int, idle time.Duration) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.allocs == nil {
		f.allocs = make(map[string]int)
	}
	f.nextID++
	id := string(rune('a' + f.nextID - 1))
	f.allocs[id] = n
	f.alive += n // instantly alive for these tests
	return id, nil
}

func (f *fakeAllocator) Deallocate(id string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.alive -= f.allocs[id]
	delete(f.allocs, id)
	f.dealloc = append(f.dealloc, id)
	return nil
}

func (f *fakeAllocator) Counts() (int, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.alive, 0
}

func TestProvisionerAcquiresForQueueDepth(t *testing.T) {
	alloc := &fakeAllocator{}
	queued := 10
	p, err := provision.New(provision.Options{
		Stats:        func() (fproto.StatsReply, error) { return fproto.StatsReply{Queued: queued}, nil },
		Allocator:    alloc,
		MaxExecutors: 8,
		PollInterval: 10 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if alive, _ := alloc.Counts(); alive == 8 {
			break // clamped at MaxExecutors
		}
		if time.Now().After(deadline) {
			alive, _ := alloc.Counts()
			t.Fatalf("alive = %d, want 8", alive)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Demand satisfied: no further allocations.
	time.Sleep(50 * time.Millisecond)
	if alive, _ := alloc.Counts(); alive != 8 {
		t.Fatalf("alive drifted to %d", alive)
	}
	if p.Allocations() != 1 {
		t.Fatalf("allocations = %d, want 1 (all-at-once)", p.Allocations())
	}
}

func TestProvisionerCentralizedRelease(t *testing.T) {
	alloc := &fakeAllocator{}
	var mu sync.Mutex
	queued := 4
	p, err := provision.New(provision.Options{
		Stats: func() (fproto.StatsReply, error) {
			mu.Lock()
			defer mu.Unlock()
			return fproto.StatsReply{Queued: queued}, nil
		},
		Allocator:      alloc,
		Release:        provision.ReleaseCentralized,
		QueueThreshold: 1,
		MaxExecutors:   4,
		PollInterval:   10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if alive, _ := alloc.Counts(); alive == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never acquired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	queued = 0
	mu.Unlock()
	for {
		if alive, _ := alloc.Counts(); alive == 0 {
			break
		}
		if time.Now().After(deadline) {
			alive, _ := alloc.Counts()
			t.Fatalf("alive = %d after queue drained", alive)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestProvisionerValidation(t *testing.T) {
	stats := func() (fproto.StatsReply, error) { return fproto.StatsReply{}, nil }
	alloc := &fakeAllocator{}
	cases := []provision.Options{
		{Allocator: alloc, MaxExecutors: 1},                                // nil stats
		{Stats: stats, MaxExecutors: 1},                                    // nil allocator
		{Stats: stats, Allocator: alloc},                                   // zero max
		{Stats: stats, Allocator: alloc, MaxExecutors: 2, MinExecutors: 5}, // min > max
	}
	for i, o := range cases {
		if _, err := provision.New(o); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

// End-to-end: dynamic provisioning against a live dispatcher with the
// LocalAllocator and distributed idle release — a miniature of §4.6.
func TestDynamicProvisioningEndToEnd(t *testing.T) {
	d := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	alloc := &provision.LocalAllocator{
		Template: executor.Options{
			DispatcherAddr: d.Addr(),
			SleepScale:     0.001,
		},
		StartupDelay: 20 * time.Millisecond, // miniature LRM queue wait
	}
	p, err := provision.New(provision.Options{
		Stats:        func() (fproto.StatsReply, error) { return d.Stats(), nil },
		Allocator:    alloc,
		Acquisition:  provision.AllAtOnce(),
		Release:      provision.ReleaseDistributed,
		IdleTimeout:  150 * time.Millisecond,
		MaxExecutors: 4,
		PollInterval: 20 * time.Millisecond,
		Logf:         t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer func() {
		p.Stop()
		p.ReleaseAll()
		alloc.Wait()
	}()

	c, err := client.Connect(client.Options{DispatcherAddr: d.Addr(), BundleSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var gen task.IDGen
	if err := c.Submit(task.Batch(&gen, 64, time.Second)); err != nil {
		t.Fatal(err)
	}
	rs, err := c.WaitN(64, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 64 {
		t.Fatalf("results = %d", len(rs))
	}
	// After the queue drains, distributed idle release should shrink the
	// pool to zero.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if st := d.Stats(); st.TotalExecutors == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("executors never idle-released: %+v", d.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if p.Allocations() == 0 {
		t.Fatal("no allocations recorded")
	}
}

func TestLocalAllocatorCancelBeforeStartup(t *testing.T) {
	d := dispatch.New(dispatch.Options{Logf: t.Logf})
	if err := d.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	alloc := &provision.LocalAllocator{
		Template:     executor.Options{DispatcherAddr: d.Addr()},
		StartupDelay: 10 * time.Second, // long enough that cancel wins
	}
	id, err := alloc.Allocate(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, pending := alloc.Counts(); pending != 3 {
		t.Fatalf("pending = %d", pending)
	}
	if err := alloc.Deallocate(id); err != nil {
		t.Fatal(err)
	}
	alive, pending := alloc.Counts()
	if alive != 0 || pending != 0 {
		t.Fatalf("after cancel: alive=%d pending=%d", alive, pending)
	}
	if st := d.Stats(); st.TotalExecutors != 0 {
		t.Fatalf("executors registered despite cancel: %+v", st)
	}
}

func TestLocalAllocatorDeallocateUnknown(t *testing.T) {
	alloc := &provision.LocalAllocator{}
	if err := alloc.Deallocate("nope"); err == nil {
		t.Fatal("unknown allocation accepted")
	}
}

func TestLocalAllocatorRejectsBadSize(t *testing.T) {
	alloc := &provision.LocalAllocator{}
	if _, err := alloc.Allocate(0, 0); err == nil {
		t.Fatal("zero-size allocation accepted")
	}
}
