package provision

import (
	"fmt"
	"sync"
	"time"

	"falkon/internal/executor"
)

// LocalAllocator satisfies Allocator by starting in-process executors
// against a live dispatcher. It stands in for the paper's GRAM4+PBS
// allocation pathway in the live runtime, with a configurable startup delay
// modelling LRM queue wait plus executor bootstrap (the paper observed
// 5–65 s; tests use milliseconds).
type LocalAllocator struct {
	// Template supplies executor options; ID, IdleTimeout and Allocation
	// are overwritten per executor.
	Template executor.Options
	// StartupDelay is the simulated allocation latency before each executor
	// registers.
	StartupDelay time.Duration

	mu      sync.Mutex
	nextID  int
	allocs  map[string]*localAlloc
	alive   int
	pending int
}

type localAlloc struct {
	execs  []*executor.Executor
	cancel chan struct{}
	wg     sync.WaitGroup
}

// Allocate starts n executors asynchronously.
func (l *LocalAllocator) Allocate(n int, idleTimeout time.Duration) (string, error) {
	if n <= 0 {
		return "", fmt.Errorf("provision: allocation size %d", n)
	}
	l.mu.Lock()
	if l.allocs == nil {
		l.allocs = make(map[string]*localAlloc)
	}
	l.nextID++
	id := fmt.Sprintf("alloc-%d", l.nextID)
	a := &localAlloc{cancel: make(chan struct{})}
	l.allocs[id] = a
	l.pending += n
	l.mu.Unlock()

	for i := 0; i < n; i++ {
		a.wg.Add(1)
		go func(i int) {
			defer a.wg.Done()
			if l.StartupDelay > 0 {
				select {
				case <-time.After(l.StartupDelay):
				case <-a.cancel:
					l.mu.Lock()
					l.pending--
					l.mu.Unlock()
					return
				}
			}
			opts := l.Template
			opts.ID = fmt.Sprintf("%s-exec-%d", id, i)
			opts.IdleTimeout = idleTimeout
			opts.Allocation = id
			ex, err := executor.Start(opts)
			l.mu.Lock()
			l.pending--
			if err != nil {
				l.mu.Unlock()
				return
			}
			l.alive++
			a.execs = append(a.execs, ex)
			l.mu.Unlock()
			<-ex.Done() // idle self-release or Stop
			l.mu.Lock()
			l.alive--
			l.mu.Unlock()
		}(i)
	}
	return id, nil
}

// Deallocate stops every executor in the allocation.
func (l *LocalAllocator) Deallocate(id string) error {
	l.mu.Lock()
	a, ok := l.allocs[id]
	if ok {
		delete(l.allocs, id)
	}
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("provision: unknown allocation %q", id)
	}
	close(a.cancel)
	l.mu.Lock()
	execs := a.execs
	l.mu.Unlock()
	for _, ex := range execs {
		ex.Stop()
	}
	a.wg.Wait()
	return nil
}

// Counts reports alive and starting executors.
func (l *LocalAllocator) Counts() (alive, pending int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.alive, l.pending
}

// Wait blocks until all executors from all allocations have stopped; useful
// in tests after Deallocate/idle-release.
func (l *LocalAllocator) Wait() {
	l.mu.Lock()
	allocs := make([]*localAlloc, 0, len(l.allocs))
	for _, a := range l.allocs {
		allocs = append(allocs, a)
	}
	l.mu.Unlock()
	for _, a := range allocs {
		a.wg.Wait()
	}
}
