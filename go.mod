module falkon

go 1.22
