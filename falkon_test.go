package falkon_test

import (
	"sync/atomic"
	"testing"
	"time"

	"falkon"
)

func TestSystemStaticPool(t *testing.T) {
	sys, err := falkon.Start(falkon.Config{
		Executors:  4,
		BundleSize: 25,
		SleepScale: 0.001,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var gen falkon.IDGen
	if err := sys.Submit(falkon.SleepBatch(&gen, 200, 0)); err != nil {
		t.Fatal(err)
	}
	rs, err := sys.WaitN(200, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Failed() {
			t.Fatalf("task failed: %+v", r)
		}
	}
	st := sys.Stats()
	if st.Completed != 200 || st.TotalExecutors != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSystemSecure(t *testing.T) {
	sys, err := falkon.Start(falkon.Config{
		Executors:  2,
		Security:   falkon.SecuritySecureConversation,
		PSK:        []byte("system-test-key"),
		BundleSize: 10,
		SleepScale: 0.001,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var gen falkon.IDGen
	if err := sys.Submit(falkon.SleepBatch(&gen, 40, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WaitN(40, 30*time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestSystemProvisioned(t *testing.T) {
	sys, err := falkon.Start(falkon.Config{
		SleepScale: 0.001,
		BundleSize: 16,
		Provisioning: &falkon.ProvisioningConfig{
			MaxExecutors: 4,
			IdleTimeout:  200 * time.Millisecond,
			Release:      falkon.ReleaseDistributed,
			Acquisition:  falkon.AllAtOnce(),
			PollInterval: 20 * time.Millisecond,
			StartupDelay: 10 * time.Millisecond,
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var gen falkon.IDGen
	if err := sys.Submit(falkon.SleepBatch(&gen, 64, time.Second)); err != nil {
		t.Fatal(err)
	}
	rs, err := sys.WaitN(64, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 64 {
		t.Fatalf("results = %d", len(rs))
	}
	if sys.Provisioner().Allocations() == 0 {
		t.Fatal("provisioner never allocated")
	}
}

func TestSystemFuncTasks(t *testing.T) {
	sys, err := falkon.Start(falkon.Config{
		Executors: 2,
		Funcs: map[string]falkon.Func{
			"double": func(tk falkon.Task) (string, int, error) {
				return tk.Args[0] + tk.Args[0], 0, nil
			},
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	err = sys.Submit([]falkon.Task{{ID: 1, Engine: falkon.EngineFunc, Command: "double", Args: []string{"ab"}}})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sys.WaitN(1, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Stdout != "abab" {
		t.Fatalf("stdout = %q", rs[0].Stdout)
	}
}

func TestSystemDataAwarePolicy(t *testing.T) {
	var staged atomic.Int64
	sys, err := falkon.Start(falkon.Config{
		Executors:     2,
		BundleSize:    8,
		Policy:        falkon.PolicyDataAware,
		CacheCapacity: 8,
		DataCost: func(io falkon.IOSpec) time.Duration {
			staged.Add(1)
			return time.Millisecond
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var tasks []falkon.Task
	var gen falkon.IDGen
	for i := 0; i < 32; i++ {
		tasks = append(tasks, falkon.Task{
			ID:     gen.Next(),
			Engine: falkon.EngineData,
			IO:     &falkon.IOSpec{ReadBytes: 1 << 20, Dataset: []string{"a", "b"}[i%2]},
		})
	}
	if err := sys.Submit(tasks); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WaitN(32, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("no cache hits: %+v", st)
	}
	if n := staged.Load(); n >= 32 {
		t.Fatalf("every task staged (%d); cache hits should skip staging", n)
	}
}

func TestSystemPrefetchAhead(t *testing.T) {
	sys, err := falkon.Start(falkon.Config{
		Executors:     2,
		BundleSize:    16,
		PrefetchAhead: true,
		SleepScale:    0.001,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	var gen falkon.IDGen
	if err := sys.Submit(falkon.SleepBatch(&gen, 100, time.Second)); err != nil {
		t.Fatal(err)
	}
	rs, err := sys.WaitN(100, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[falkon.ID]bool{}
	for _, r := range rs {
		if r.Failed() || seen[r.ID] {
			t.Fatalf("bad result %+v", r)
		}
		seen[r.ID] = true
	}
}

func TestLiveEnduranceMini(t *testing.T) {
	// A miniature of the paper's Figure 8 endurance run on the real TCP
	// runtime: submit far more tasks than the pool can absorb instantly,
	// watch the dispatcher queue grow and then fully drain.
	sys, err := falkon.Start(falkon.Config{Executors: 2, BundleSize: 500, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	const total = 20000
	var gen falkon.IDGen
	peak := 0
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for {
			st := sys.Stats()
			if st.Queued > peak {
				peak = st.Queued
			}
			if st.Completed+st.Failed >= total {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	if err := sys.Submit(falkon.SleepBatch(&gen, total, 0)); err != nil {
		t.Fatal(err)
	}
	rs, err := sys.WaitN(total, 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	<-sampler
	if len(rs) != total {
		t.Fatalf("results = %d", len(rs))
	}
	if peak < 100 {
		t.Fatalf("queue peak = %d; expected a visible backlog", peak)
	}
	st := sys.Stats()
	if st.Queued != 0 || st.Outstanding != 0 || st.Completed != total {
		t.Fatalf("end state: %+v", st)
	}
}
