// Command falkon-forwarder runs the root of the hierarchical dispatch tree
// (paper §6, Figure 16): clients speak to it exactly as to a flat
// dispatcher, while it bundles work downstream to leaf dispatchers, routes
// every bundle by the leaves' reported capacity, and aggregates results —
// and stats, and metrics — back upward. Leaves can themselves be
// forwarders, giving trees deeper than two levels.
//
// Usage:
//
//	falkon-forwarder -addr :7524 -dispatchers host1:7523,host2:7523
//	falkon-forwarder -addr :7524 -dispatchers leaffwd1:7524,leaffwd2:7524 -bundle 128
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"falkon/internal/forward"
	"falkon/internal/fproto"
	"falkon/internal/obs"
	"falkon/internal/wsrpc"
)

func main() {
	var (
		addr        = flag.String("addr", ":7524", "listen address for clients")
		dispatchers = flag.String("dispatchers", "127.0.0.1:7523", "comma-separated dispatcher addresses")
		bundle      = flag.Int("bundle", 0, "root→leaf bundle size (0 = default 64)")
		noCapacity  = flag.Bool("no-capacity", false, "disable capacity-hint routing, fall back to round-robin")
		secure      = flag.Bool("secure", false, "use the secure-conversation transport profile on both tiers")
		pskFile     = flag.String("psk-file", "", "pre-shared key file (required with -secure)")
		debugAddr   = flag.String("debug-addr", "", "HTTP address serving /metrics and /debug/pprof/ (empty = off)")
	)
	flag.Parse()

	opts := forward.Options{
		Dispatchers: fproto.SplitAddrs(*dispatchers),
		Bundle:      *bundle,
		NoCapacity:  *noCapacity,
		Logf:        log.Printf,
	}
	if *secure {
		if *pskFile == "" {
			log.Fatal("falkon-forwarder: -secure requires -psk-file")
		}
		key, err := os.ReadFile(*pskFile)
		if err != nil {
			log.Fatalf("falkon-forwarder: read psk: %v", err)
		}
		opts.Security = wsrpc.SecuritySecureConversation
		opts.PSK = key
	}

	f, err := forward.New(opts)
	if err != nil {
		log.Fatalf("falkon-forwarder: %v", err)
	}
	obs.RegisterBuildInfo(f.Metrics(), "forwarder")
	if err := f.Listen(*addr); err != nil {
		log.Fatalf("falkon-forwarder: %v", err)
	}
	fmt.Printf("falkon-forwarder on %s relaying to %v\n", f.Addr(), opts.Dispatchers)

	if *debugAddr != "" {
		ds, err := obs.ServeDebugSnapshot(*debugAddr, f.MergedMetricsSnapshot, nil)
		if err != nil {
			log.Fatalf("falkon-forwarder: debug server: %v", err)
		}
		defer ds.Close()
		fmt.Printf("falkon-forwarder debug endpoints on http://%s/metrics\n", ds.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	f.Close()
}
