// Command falkon-executor runs one or more Falkon executors against a
// dispatcher, the way the provisioner's GRAM requests would start them on
// compute nodes.
//
// Usage:
//
//	falkon-executor -dispatcher host:7523                 # one executor
//	falkon-executor -dispatcher host:7523 -n 8 -slots 2   # eight dual-slot executors
//	falkon-executor -dispatcher host:7523 -idle 60s       # distributed release
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"falkon/internal/executor"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/wsrpc"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher address")
		name       = flag.String("name", "", "executor id prefix (default: host-pid)")
		n          = flag.Int("n", 1, "number of executors to run in this process")
		slots      = flag.Int("slots", 1, "concurrent tasks per executor (one per processor in the paper)")
		idle       = flag.Duration("idle", 0, "distributed release: deregister after this idle time (0 = never)")
		prefetch   = flag.Int("prefetch", 1, "max tasks per work pull")
		secure     = flag.Bool("secure", false, "use the secure-conversation transport profile")
		pskFile    = flag.String("psk-file", "", "pre-shared key file (required with -secure)")
		execT      = flag.Duration("exec-timeout", 0, "kill exec-engine tasks after this long (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "HTTP address serving /metrics, /events.json, and /debug/pprof/ (empty = off)")
		reconnect  = flag.Bool("reconnect", false, "survive dispatcher restarts: re-register with backoff instead of stopping")
		reconnectT = flag.Duration("reconnect-timeout", 30*time.Second, "give up after a continuous outage this long (with -reconnect)")
		faults     = flag.String("faults", os.Getenv("FALKON_FAULTS"), "fault-injection spec, e.g. seed=42,crash@0.01,stall=2s@0.01 (chaos testing; default $FALKON_FAULTS)")
	)
	flag.Parse()

	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	// One registry for every executor in the process, so /metrics is the
	// whole process's view.
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "executor")
	opts := executor.Options{
		DispatcherAddr:   *dispatcher,
		Slots:            *slots,
		IdleTimeout:      *idle,
		Prefetch:         *prefetch,
		ExecTimeout:      *execT,
		Logf:             log.Printf,
		Metrics:          reg,
		Reconnect:        *reconnect,
		ReconnectTimeout: *reconnectT,
	}
	if *faults != "" {
		spec, err := faultinj.Parse(*faults)
		if err != nil {
			log.Fatalf("falkon-executor: %v", err)
		}
		opts.Faults = faultinj.New(spec, reg, log.Printf)
		log.Printf("falkon-executor: fault injection armed: %s", spec)
	}
	if *secure {
		if *pskFile == "" {
			log.Fatal("falkon-executor: -secure requires -psk-file")
		}
		key, err := os.ReadFile(*pskFile)
		if err != nil {
			log.Fatalf("falkon-executor: read psk: %v", err)
		}
		opts.Security = wsrpc.SecuritySecureConversation
		opts.PSK = key
	}

	var wg sync.WaitGroup
	execs := make([]*executor.Executor, 0, *n)
	for i := 0; i < *n; i++ {
		o := opts
		o.ID = fmt.Sprintf("%s-%d", *name, i)
		ex, err := executor.Start(o)
		if err != nil {
			log.Fatalf("falkon-executor: start %s: %v", o.ID, err)
		}
		log.Printf("executor %s registered with %s", o.ID, *dispatcher)
		execs = append(execs, ex)
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ex.Done()
			log.Printf("executor %s stopped after %d tasks", ex.ID(), ex.TasksRun())
		}()
	}

	if *debugAddr != "" && len(execs) > 0 {
		// Traces come from the first executor; metrics cover all of them.
		ds, err := obs.ServeDebugOpts(*debugAddr, obs.DebugOptions{
			Snap:       reg.Snapshot,
			Tracer:     execs[0].Tracer(),
			SpanHeader: execs[0].SpanHeader,
		})
		if err != nil {
			log.Fatalf("falkon-executor: debug server: %v", err)
		}
		defer ds.Close()
		log.Printf("falkon-executor debug endpoints on http://%s/metrics", ds.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-sig:
		log.Println("falkon-executor: stopping")
		for _, ex := range execs {
			ex.Stop()
		}
		// Bounded wait for clean deregistration.
		select {
		case <-done:
		case <-time.After(10 * time.Second):
		}
	case <-done: // all executors idle-released
	}
}
