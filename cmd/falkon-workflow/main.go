// Command falkon-workflow executes a JSON task graph (the Swift-like DAG
// format of internal/workflow) on a Falkon system, printing per-stage
// completion times — the integration the paper demonstrates with Swift in
// §5.
//
// Usage:
//
//	falkon-workflow -dag pipeline.json -executors 8            # in-process
//	falkon-workflow -dag pipeline.json -dispatcher host:7523   # remote
//	falkon-workflow -builtin fmri -volumes 120 -executors 8    # paper app
//	falkon-workflow -builtin montage -executors 32
//	falkon-workflow -dag pipeline.json -print                  # validate + show
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"falkon/internal/client"
	"falkon/internal/core"
	"falkon/internal/workflow"
)

func main() {
	var (
		dagFile    = flag.String("dag", "", "JSON workflow file")
		builtin    = flag.String("builtin", "", "built-in graph: fmri or montage")
		volumes    = flag.Int("volumes", 120, "fMRI problem size (with -builtin fmri)")
		executors  = flag.Int("executors", 4, "in-process executor count")
		dispatcher = flag.String("dispatcher", "", "remote dispatcher address (instead of in-process executors)")
		sleepScale = flag.Float64("sleep-scale", 1.0, "compress synthetic task durations")
		printOnly  = flag.Bool("print", false, "validate and print the graph, then exit")
		timeout    = flag.Duration("timeout", 30*time.Minute, "overall deadline")
	)
	flag.Parse()

	g, err := loadGraph(*dagFile, *builtin, *volumes)
	if err != nil {
		log.Fatalf("falkon-workflow: %v", err)
	}
	cp, err := g.CriticalPath()
	if err != nil {
		log.Fatalf("falkon-workflow: %v", err)
	}
	levels, _ := g.Levels()
	fmt.Printf("workflow %q: %d tasks, %d levels, critical path %v\n", g.Name, g.Len(), len(levels), cp)
	if *printOnly {
		if err := g.SaveJSON(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	var sys *core.System
	if *dispatcher == "" {
		sys, err = core.Start(core.Config{Executors: *executors, BundleSize: 32, SleepScale: *sleepScale})
		if err != nil {
			log.Fatalf("falkon-workflow: %v", err)
		}
		defer sys.Close()
	} else {
		sys, err = attachRemote(*dispatcher)
		if err != nil {
			log.Fatalf("falkon-workflow: %v", err)
		}
		defer sys.Close()
	}

	done := make(chan workflow.Report, 1)
	lp := &workflow.LiveProvider{System: sys}
	start := time.Now()
	if err := workflow.Run(g, lp, func(r workflow.Report) { done <- r }); err != nil {
		log.Fatalf("falkon-workflow: %v", err)
	}
	select {
	case rep := <-done:
		fmt.Printf("completed %d tasks in %v\n", rep.Nodes, time.Since(start).Round(time.Millisecond))
		stages := g.StageNames()
		if len(stages) == 0 {
			return
		}
		sort.Slice(stages, func(i, j int) bool { return rep.StageEnd[stages[i]] < rep.StageEnd[stages[j]] })
		for _, s := range stages {
			fmt.Printf("  stage %-16s done at %10v  (%v CPU)\n", s, rep.StageEnd[s].Round(time.Millisecond), rep.StageBusy[s])
		}
	case <-time.After(*timeout):
		log.Fatalf("falkon-workflow: timeout after %v (errors: %v)", *timeout, lp.Errs())
	}
}

// loadGraph resolves the workflow source.
func loadGraph(dagFile, builtin string, volumes int) (*workflow.Graph, error) {
	switch {
	case dagFile != "" && builtin != "":
		return nil, fmt.Errorf("pass -dag or -builtin, not both")
	case dagFile != "":
		f, err := os.Open(dagFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return workflow.LoadJSON(f)
	case builtin == "fmri":
		return workflow.FMRIGraph(volumes), nil
	case builtin == "montage":
		return workflow.MontageGraph(), nil
	case builtin != "":
		return nil, fmt.Errorf("unknown builtin %q (want fmri or montage)", builtin)
	default:
		return nil, fmt.Errorf("pass -dag <file> or -builtin <name>")
	}
}

// attachRemote wraps a remote dispatcher in a minimal System-like shim.
func attachRemote(addr string) (*core.System, error) {
	// core.Start with zero executors attaches only a client; point it at
	// the remote dispatcher by building the pieces directly.
	return core.Attach(addr, client.Options{Name: "falkon-workflow"})
}
