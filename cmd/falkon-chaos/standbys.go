package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"falkon/internal/client"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/replica"
	"falkon/internal/task"
)

// runStandbysOne executes one chaos run against a live HA cluster:
// c.standbys+1 falkon-dispatcher processes sharing a lease file, each in
// -lease-file mode (leader serves and replicates its journal; the others
// mirror it as standbys). The killer repeatedly reads the lease, SIGKILLs
// whichever node currently leads, and waits for a successor to win a
// strictly newer term — so every kill is a real failover, and the client
// must still see exactly-once delivery through the whole chain of them.
//
// Kills are progress-gated rather than wall-clock-scheduled: each one
// fires only after the cluster has completed another slice of the
// workload, which guarantees the failovers land mid-workload no matter
// how fast the executors drain it.
func runStandbysOne(c cfg, keep bool) (err error) {
	c.workDir, err = os.MkdirTemp("", fmt.Sprintf("falkon-chaos-ha-%d-", c.seed))
	if err != nil {
		return err
	}
	defer func() {
		if err == nil && !keep {
			os.RemoveAll(c.workDir)
		} else {
			log.Printf("seed %d: work dir kept at %s", c.seed, c.workDir)
		}
	}()

	n := c.standbys + 1
	addrs := make([]string, n)
	for i := range addrs {
		if addrs[i], err = freeAddr(); err != nil {
			return err
		}
	}
	chain := strings.Join(addrs, ",")
	leasePath := filepath.Join(c.workDir, "lease")
	lease := &replica.Lease{Path: leasePath}

	log.Printf("seed %d HA schedule: nodes=%v lease=%s kills=%d (progress-gated)", c.seed, addrs, leasePath, c.kills)

	// Cluster members under supervision. A SIGKILLed leader restarts in the
	// same mode and rejoins as a standby (its journal dir becomes its mirror
	// dir); a node that loses its lease exits 4 and restarts the same way.
	nodes := make([]*super, n)
	for i := range nodes {
		i := i
		journal := filepath.Join(c.workDir, fmt.Sprintf("node-%d", i))
		nodes[i] = newSuper(fmt.Sprintf("node-%d", i), c, func(restart int) *exec.Cmd {
			spec := dispatcherSpec(c.seed, restart)
			spec.Seed = faultinj.DeriveSeed(c.seed, 4000+500*uint64(i)+uint64(restart))
			return exec.Command(filepath.Join(c.binDir, "falkon-dispatcher"),
				"-addr", addrs[i],
				"-journal-dir", journal,
				"-journal-sync", "group",
				"-snapshot-every", "200",
				"-replay-timeout", "500ms",
				"-max-retries", "50",
				"-shards", fmt.Sprint(c.shards),
				"-stats-every", "0",
				"-lease-file", leasePath,
				"-lease-ttl", "750ms",
				"-node-id", fmt.Sprintf("node-%d", i),
				"-replicate", "quorum",
				"-faults", spec.String(),
			)
		})
		defer nodes[i].stop()
	}

	st0, err := waitLeader(lease, 0, 15*time.Second)
	if err != nil {
		return err
	}
	if err := waitListening(st0.Addr, 10*time.Second); err != nil {
		return fmt.Errorf("first leader %s never listened: %w", st0.Holder, err)
	}
	log.Printf("seed %d: %s leads at term %d", c.seed, st0.Holder, st0.Term)

	// Executors follow the full address chain: whoever leads is in it.
	sups := make([]*super, c.execs)
	for i := 0; i < c.execs; i++ {
		i := i
		sups[i] = newSuper(fmt.Sprintf("executor-%d", i), c, func(restart int) *exec.Cmd {
			return exec.Command(filepath.Join(c.binDir, "falkon-executor"),
				"-dispatcher", chain,
				"-name", fmt.Sprintf("chaos-ex%d", i),
				"-slots", fmt.Sprint(c.slots),
				"-reconnect",
				"-reconnect-timeout", "60s",
				"-faults", executorSpec(c.seed, i, restart).String(),
			)
		})
		defer sups[i].stop()
	}

	// The reconnecting client follows the same chain; the cluster id the
	// leader stamps on its instance makes the EPR valid on every member.
	creg := obs.NewRegistry()
	cinj := faultinj.New(clientSpec(c.seed), creg, nil)
	var cl *client.Client
	for attempt := 0; ; attempt++ {
		cl, err = client.Connect(client.Options{
			DispatcherAddr:   chain,
			Name:             "falkon-chaos-ha",
			BundleSize:       20,
			Reconnect:        true,
			ReconnectTimeout: 60 * time.Second,
			Faults:           cinj,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			return fmt.Errorf("client connect: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer cl.Close()

	var gen task.IDGen
	ts := make([]task.Task, c.tasks)
	for i := range ts {
		ts[i] = task.Task{
			ID:       gen.Next(),
			Engine:   task.EngineSleep,
			Duration: time.Duration(faultinj.Uniform(c.seed, 99, uint64(i)) * float64(c.maxSleep)),
		}
	}
	if err := cl.Submit(ts); err != nil {
		return fmt.Errorf("submit: %w", err)
	}

	// The leader killer: wait for the cluster to complete another slice of
	// the workload, SIGKILL the current leader, wait for the failover (a
	// strictly newer lease term), repeat.
	killErr := make(chan error, 1)
	go func() {
		killErr <- func() error {
			deadline := time.Now().Add(c.waitFor)
			term := st0.Term
			for k := 0; k < c.kills; k++ {
				target := int64((k + 1) * c.tasks / (c.kills + 2))
				if err := waitProgress(cl, target, deadline); err != nil {
					return fmt.Errorf("kill %d: %w", k, err)
				}
				st, err := waitLeader(lease, term-1, time.Until(deadline))
				if err != nil {
					return fmt.Errorf("kill %d: %w", k, err)
				}
				victim := nodeIndex(st.Holder)
				if victim < 0 || victim >= n {
					return fmt.Errorf("kill %d: lease names unknown holder %q", k, st.Holder)
				}
				log.Printf("seed %d: SIGKILL leader %s (term %d, %d+ tasks done)", c.seed, st.Holder, st.Term, target)
				nodes[victim].kill()
				next, err := waitLeader(lease, st.Term, time.Until(deadline))
				if err != nil {
					return fmt.Errorf("failover %d after killing %s: %w", k, st.Holder, err)
				}
				log.Printf("seed %d: failover %d: %s leads at term %d", c.seed, k+1, next.Holder, next.Term)
				term = next.Term
			}
			return nil
		}()
	}()

	results, err := cl.WaitN(len(ts), c.waitFor)
	if err != nil {
		return fmt.Errorf("await results: %w", err)
	}
	if err := <-killErr; err != nil {
		return err
	}

	if err := verifyExactlyOnce(c.seed, ts, results); err != nil {
		return err
	}

	// The failover chain really happened: every takeover bumps the lease
	// term, so c.kills leader deaths mean at least 1+c.kills terms.
	final, err := lease.Read()
	if err != nil {
		return err
	}
	if final.Term < uint64(1+c.kills) {
		return fmt.Errorf("lease term %d after %d leader kills — failovers did not happen", final.Term, c.kills)
	}

	if err := awaitDrained(cl, 30*time.Second); err != nil {
		return err
	}

	// One more failover at rest: kill the leader after the workload is done
	// and require the promoted successor to replay its mirror to a clean,
	// fully-accounted state.
	st, err := waitLeader(lease, 0, 10*time.Second)
	if err != nil {
		return err
	}
	log.Printf("seed %d: final SIGKILL leader %s + promoted-recovery check", c.seed, st.Holder)
	if v := nodeIndex(st.Holder); v >= 0 && v < n {
		nodes[v].kill()
	}
	if _, err := waitLeader(lease, st.Term, 30*time.Second); err != nil {
		return fmt.Errorf("no successor after final kill: %w", err)
	}
	if err := awaitDrained(cl, 30*time.Second); err != nil {
		return fmt.Errorf("after final failover: %w", err)
	}
	stats, err := cl.Stats()
	if err != nil {
		return fmt.Errorf("stats after final failover: %w", err)
	}
	if stats.Replication == nil || stats.Replication.Role != "leader" {
		return fmt.Errorf("promoted dispatcher reports no leader replication stats: %+v", stats.Replication)
	}
	if stats.Completed < int64(len(ts)) {
		return fmt.Errorf("promoted counters inconsistent: completed=%d < workload %d", stats.Completed, len(ts))
	}

	restarts := make([]string, n)
	for i, nd := range nodes {
		restarts[i] = fmt.Sprint(nd.restarts())
	}
	log.Printf("seed %d PASS (HA %d standbys): %d results across %d failovers (final term %d), client reconnects=%d resubmit-deduped=%d dup-results-dropped=%d, client faults: %s, node restarts=%v",
		c.seed, c.standbys, len(results), c.kills, final.Term, cl.Reconnects(), cl.Deduped(), cl.DuplicatesDropped(), cinj.Summary(), restarts)
	printFaultCounters("client", creg.Snapshot().Counters)
	return nil
}

// waitLeader polls the lease file until a live holder with term > minTerm
// appears.
func waitLeader(lease *replica.Lease, minTerm uint64, timeout time.Duration) (replica.LeaseState, error) {
	deadline := time.Now().Add(timeout)
	var last replica.LeaseState
	for {
		st, err := lease.Read()
		if err == nil && st.Holder != "" && !st.Expired(time.Now()) && st.Term > minTerm {
			return st, nil
		}
		if err == nil {
			last = st
		}
		if time.Now().After(deadline) {
			return last, fmt.Errorf("no leader past term %d within %v (lease: %+v)", minTerm, timeout, last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// waitProgress polls the cluster's completed-task counter (replayed across
// failovers, so monotonic) until it reaches target. Stats errors during a
// failover window are retried.
func waitProgress(cl *client.Client, target int64, deadline time.Time) error {
	for {
		st, err := cl.Stats()
		if err == nil && st.Completed >= target {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("stats unavailable waiting for %d completions: %w", target, err)
			}
			return fmt.Errorf("stalled at %d/%d completions", st.Completed, target)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// nodeIndex parses the "node-%d" holder ids this harness assigns.
func nodeIndex(holder string) int {
	var i int
	if _, err := fmt.Sscanf(holder, "node-%d", &i); err != nil {
		return -1
	}
	return i
}
