package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"time"

	"falkon/internal/client"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/task"
)

// runTreeOne executes one chaos run against a live dispatch tree:
// a falkon-forwarder root, c.tree journaled leaf dispatchers, and
// executors striped across the leaves. With -tree-depth ≥ 3 the root
// forwards to intermediate forwarder layers (forwarder-of-forwarders)
// instead of reaching the leaves directly, each layer halving the fan-in.
// Unlike the flat run, the scheduled SIGKILLs target the LEAVES
// (rotating), which exercises the tree's whole failure story at once: the
// tier above redistributes the dead leaf's owed work to live siblings,
// the restarted leaf replays its journal and re-runs whatever it already
// owned, and the forwarders' done-sets drop the duplicate results — so
// the client must still see exactly-once delivery no matter how many
// levels the results bubble up through.
func runTreeOne(c cfg, keep bool) (err error) {
	c.workDir, err = os.MkdirTemp("", fmt.Sprintf("falkon-chaos-tree-%d-", c.seed))
	if err != nil {
		return err
	}
	defer func() {
		if err == nil && !keep {
			os.RemoveAll(c.workDir)
		} else {
			log.Printf("seed %d: work dir kept at %s", c.seed, c.workDir)
		}
	}()

	leafAddrs := make([]string, c.tree)
	for i := range leafAddrs {
		if leafAddrs[i], err = freeAddr(); err != nil {
			return err
		}
	}
	rootAddr, err := freeAddr()
	if err != nil {
		return err
	}

	killAts := killSchedule(c)
	targets := make([]string, len(killAts))
	for i, at := range killAts {
		targets[i] = fmt.Sprintf("leaf-%d@%v", i%c.tree, at)
	}
	log.Printf("seed %d tree schedule: depth=%d root=%s leaves=%v kills=%v", c.seed, c.treeDepth, rootAddr, leafAddrs, targets)

	// Leaves: journaled dispatchers under supervision, each with its own
	// derived fault spec — the same disk/latency fault family the flat run
	// injects, seeded per leaf.
	leaves := make([]*super, c.tree)
	for i := range leaves {
		i := i
		journal := filepath.Join(c.workDir, fmt.Sprintf("journal-leaf-%d", i))
		leaves[i] = newSuper(fmt.Sprintf("leaf-%d", i), c, func(restart int) *exec.Cmd {
			return exec.Command(filepath.Join(c.binDir, "falkon-dispatcher"),
				"-addr", leafAddrs[i],
				"-journal-dir", journal,
				"-journal-sync", "group",
				"-snapshot-every", "200",
				"-replay-timeout", "500ms",
				"-max-retries", "50",
				"-shards", fmt.Sprint(c.shards),
				"-stats-every", "0",
				"-faults", leafSpec(c.seed, i, restart).String(),
			)
		})
		defer leaves[i].stop()
	}
	for i, a := range leafAddrs {
		if err := waitListening(a, 10*time.Second); err != nil {
			return fmt.Errorf("leaf %d never listened: %w", i, err)
		}
	}

	// Intermediate forwarder layers (depth ≥ 3): each layer halves the
	// fan-in, striping the layer below across its forwarders. Mids are
	// never kill targets — leaf death is the failure under test — but every
	// redistribution and dedup now happens once per level. treeRows counts
	// every forwarder→child edge in the topology: the flattened LeafStats
	// rows the root reports once the whole tree is connected and healthy.
	treeRows := 0
	childAddrs := leafAddrs
	for level := 0; level < c.treeDepth-2; level++ {
		treeRows += len(childAddrs)
		nMid := (len(childAddrs) + 1) / 2
		midAddrs := make([]string, nMid)
		for j := range midAddrs {
			if midAddrs[j], err = freeAddr(); err != nil {
				return err
			}
		}
		for j := 0; j < nMid; j++ {
			j := j
			var kids []string
			for k := j; k < len(childAddrs); k += nMid {
				kids = append(kids, childAddrs[k])
			}
			name := fmt.Sprintf("mid-%d-%d", level, j)
			mid := newSuper(name, c, func(int) *exec.Cmd {
				return exec.Command(filepath.Join(c.binDir, "falkon-forwarder"),
					"-addr", midAddrs[j],
					"-dispatchers", strings.Join(kids, ","),
					"-bundle", "8",
				)
			})
			defer mid.stop()
		}
		for j, a := range midAddrs {
			if err := waitListening(a, 10*time.Second); err != nil {
				return fmt.Errorf("mid-%d-%d never listened: %w", level, j, err)
			}
		}
		childAddrs = midAddrs
	}
	treeRows += len(childAddrs)

	// The root. Never a kill target — the harness exercises leaf death; the
	// supervisor only matters if the root exits on its own. A small bundle
	// keeps several bundles in flight even on the quick workload, so a kill
	// usually lands while the dead leaf still owes work.
	root := newSuper("root", c, func(int) *exec.Cmd {
		return exec.Command(filepath.Join(c.binDir, "falkon-forwarder"),
			"-addr", rootAddr,
			"-dispatchers", strings.Join(childAddrs, ","),
			"-bundle", "8",
		)
	})
	defer root.stop()
	if err := waitListening(rootAddr, 10*time.Second); err != nil {
		return fmt.Errorf("root never listened: %w", err)
	}

	// Executors striped across the leaves, reconnecting so each one rides
	// out its own leaf's restarts.
	sups := make([]*super, c.execs)
	for i := 0; i < c.execs; i++ {
		i := i
		sups[i] = newSuper(fmt.Sprintf("executor-%d", i), c, func(restart int) *exec.Cmd {
			return exec.Command(filepath.Join(c.binDir, "falkon-executor"),
				"-dispatcher", leafAddrs[i%c.tree],
				"-name", fmt.Sprintf("chaos-ex%d", i),
				"-slots", fmt.Sprint(c.slots),
				"-reconnect",
				"-reconnect-timeout", "60s",
				"-faults", executorSpec(c.seed, i, restart).String(),
			)
		})
		defer sups[i].stop()
	}

	// Scheduled leaf SIGKILLs, rotating across the leaves.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		start := time.Now()
		for i, at := range killAts {
			d := time.Until(start.Add(at))
			if d > 0 {
				select {
				case <-time.After(d):
				case <-root.stopped:
					return
				}
			}
			log.Printf("seed %d: SIGKILL leaf-%d (scheduled %v)", c.seed, i%c.tree, at)
			leaves[i%c.tree].kill()
		}
	}()

	// The reconnecting client talks only to the root — it cannot tell the
	// tree from a flat dispatcher.
	creg := obs.NewRegistry()
	cinj := faultinj.New(clientSpec(c.seed), creg, nil)
	var cl *client.Client
	for attempt := 0; ; attempt++ {
		cl, err = client.Connect(client.Options{
			DispatcherAddr:   rootAddr,
			Name:             "falkon-chaos-tree",
			BundleSize:       20,
			Reconnect:        true,
			ReconnectTimeout: 60 * time.Second,
			Faults:           cinj,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			return fmt.Errorf("client connect: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer cl.Close()

	var gen task.IDGen
	ts := make([]task.Task, c.tasks)
	for i := range ts {
		ts[i] = task.Task{
			ID:       gen.Next(),
			Engine:   task.EngineSleep,
			Duration: time.Duration(faultinj.Uniform(c.seed, 99, uint64(i)) * float64(c.maxSleep)),
		}
	}
	if err := cl.Submit(ts); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	results, err := cl.WaitN(len(ts), c.waitFor)
	if err != nil {
		return fmt.Errorf("await results: %w", err)
	}
	<-killDone

	if err := verifyExactlyOnce(c.seed, ts, results); err != nil {
		return err
	}

	// Invariant 3: the tree drained AND healed. The stats RPC rides the
	// root, which aggregates queued/outstanding across its live children
	// only — a dead child drops out of the sample — so "drained" must also
	// require every node back up, or the check would pass while a
	// restarted leaf is still replaying journaled work (which must execute
	// and be dropped as dups on the way up before the tree truly reads
	// empty). Forwarders flatten their children's LeafStats rows upward, so
	// the root's row set covers every forwarder→child edge in the topology
	// — a dead leaf under a live mid still shows up (and a dead mid hides
	// its subtree's rows, shrinking the set below treeRows).
	if err := awaitTreeHealed(cl, treeRows, 30*time.Second); err != nil {
		return err
	}
	if st, err := cl.Stats(); err == nil && st.Depth != c.treeDepth {
		return fmt.Errorf("root reports tree depth %d, want %d", st.Depth, c.treeDepth)
	}

	// Invariant 4: clean recovery after one more leaf death. Kill leaf 0
	// cold; the restarted leaf replays its journal, the tree drains again,
	// and the root's merged metrics account for the whole workload.
	log.Printf("seed %d: final SIGKILL leaf-0 + recovery check", c.seed)
	leaves[0].kill()
	if err := awaitTreeHealed(cl, treeRows, 30*time.Second); err != nil {
		return fmt.Errorf("after final leaf restart: %w", err)
	}
	ms, err := cl.Metrics()
	if err != nil {
		return fmt.Errorf("metrics after recovery: %w", err)
	}
	comp := ms.Counters["falkon_tasks_completed_total"]
	if comp < int64(len(ts)) {
		return fmt.Errorf("merged metrics inconsistent: completed=%d < submitted workload %d", comp, len(ts))
	}

	restarts := make([]string, c.tree)
	for i, l := range leaves {
		restarts[i] = fmt.Sprint(l.restarts())
	}
	log.Printf("seed %d PASS (tree %d leaves, depth %d): %d results, client reconnects=%d resubmit-deduped=%d dup-results-dropped=%d, client faults: %s, leaf restarts=%v",
		c.seed, c.tree, c.treeDepth, len(results), cl.Reconnects(), cl.Deduped(), cl.DuplicatesDropped(), cinj.Summary(), restarts)
	printFaultCounters("client", creg.Snapshot().Counters)
	printFaultCounters("tree", ms.Counters)
	return nil
}

// awaitTreeHealed polls the root's aggregated stats until every node in the
// tree (the root's flattened row set covers every forwarder→child edge) is
// up again and nothing is queued or outstanding anywhere in the tree.
func awaitTreeHealed(cl *client.Client, wantRows int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := cl.Stats()
		if err == nil && st.Queued == 0 && st.Outstanding == 0 {
			up := 0
			for _, l := range st.Leaves {
				if l.Up {
					up++
				}
			}
			if up == wantRows {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("tree stats unavailable: %w", err)
			}
			up := 0
			for _, l := range st.Leaves {
				if l.Up {
					up++
				}
			}
			return fmt.Errorf("tree not healed: queued=%d outstanding=%d nodes up %d/%d", st.Queued, st.Outstanding, up, wantRows)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// leafSpec derives leaf i's injector spec for its restart'th incarnation —
// the dispatcher fault family, seeded per leaf.
func leafSpec(seed uint64, leaf, restart int) faultinj.Spec {
	s := dispatcherSpec(seed, restart)
	s.Seed = faultinj.DeriveSeed(seed, 1000+500*uint64(leaf)+uint64(restart))
	return s
}
