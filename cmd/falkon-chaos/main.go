// Command falkon-chaos runs a real multi-process Falkon deployment —
// dispatcher, executors, and a reconnecting client — under a seeded fault
// schedule, then asserts the system's end-to-end invariants:
//
//   - exactly-once: N submitted tasks yield exactly N results with N
//     distinct task IDs, none lost, none delivered twice;
//   - no stuck work: once the workload completes, the dispatcher reports
//     an empty queue and no outstanding tasks;
//   - clean recovery: after a final SIGKILL + restart, the recovered
//     dispatcher still reports nothing pending and serves metrics.
//
// The fault schedule — per-process injector specs, the dispatcher kill
// times, the workload's task durations — is a pure function of -seed, so a
// failing run reproduces with the same seed:
//
//	falkon-chaos -seed 42
//	falkon-chaos -seed 1 -sweep 30        # acceptance sweep
//	falkon-chaos -seed 7 -quick           # CI smoke
//
// Child processes are the real binaries (cmd/falkon-dispatcher,
// cmd/falkon-executor), built on first use; dispatcher crashes (injected
// kills, journal fail-stops, executor faults) are supervised and restarted
// the way an operator's init system would.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"falkon/internal/client"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/task"
)

// cfg carries one run's parameters, all derived from flags and the seed.
type cfg struct {
	seed      uint64
	tasks     int
	execs     int
	slots     int
	kills     int
	shards    int
	tree      int
	treeDepth int
	standbys  int
	binDir    string
	workDir   string
	verbose   bool
	waitFor   time.Duration
	maxSleep  time.Duration
}

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "master seed driving the entire fault schedule")
		sweep    = flag.Int("sweep", 1, "run this many consecutive seeds (all must pass)")
		tasks    = flag.Int("tasks", 200, "tasks to submit per run")
		execs    = flag.Int("execs", 3, "executor processes")
		slots    = flag.Int("slots", 2, "slots per executor")
		kills    = flag.Int("kills", 2, "scheduled dispatcher SIGKILLs per run")
		quick    = flag.Bool("quick", false, "small fast run for CI smoke (overrides -tasks/-execs/-kills)")
		keep     = flag.Bool("keep", false, "keep work directories (logs, journals) after a passing run")
		verbose  = flag.Bool("v", false, "stream child process logs to stderr")
		shards   = flag.Int("shards", 0, "dispatcher scheduling shards (passed through; 0 = one per CPU)")
		tree     = flag.Int("tree", 0, "dispatch-tree leaves: boot 1 forwarder root + N journaled leaf dispatchers, SIGKILL leaves instead of the dispatcher (0 = flat single dispatcher)")
		treeDeep = flag.Int("tree-depth", 2, "dispatch-tree levels with -tree: 2 = root over leaves, ≥3 adds forwarder-of-forwarders layers between them")
		standbys = flag.Int("standbys", 0, "HA cluster: boot 1 leader + N standby dispatchers sharing an election lease, SIGKILL whoever leads (0 = no HA)")
		binDir   = flag.String("bin", "", "directory holding the falkon binaries (empty = go build into the work area)")
		waitFor  = flag.Duration("timeout", 2*time.Minute, "per-run workload completion timeout")
	)
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	c := cfg{
		seed: *seed, tasks: *tasks, execs: *execs, slots: *slots, kills: *kills,
		shards: *shards, tree: *tree, treeDepth: *treeDeep, standbys: *standbys,
		binDir: *binDir, verbose: *verbose, waitFor: *waitFor,
		maxSleep: 20 * time.Millisecond,
	}
	if c.treeDepth < 2 {
		c.treeDepth = 2
	}
	if *quick {
		c.tasks, c.execs, c.kills = 60, 2, 1
		if c.waitFor > time.Minute {
			c.waitFor = time.Minute
		}
	}
	// The HA acceptance bar is a chain of consecutive failovers, not one:
	// give the full (non-quick) run at least three leader kills.
	if c.standbys > 0 && !*quick && c.kills < 3 {
		c.kills = 3
	}

	if c.binDir == "" {
		dir, err := os.MkdirTemp("", "falkon-chaos-bin-")
		if err != nil {
			log.Fatalf("falkon-chaos: %v", err)
		}
		defer os.RemoveAll(dir)
		log.Printf("building binaries into %s", dir)
		build := exec.Command("go", "build", "-o", dir, "./cmd/falkon-dispatcher", "./cmd/falkon-executor", "./cmd/falkon-forwarder")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			log.Fatalf("falkon-chaos: go build: %v", err)
		}
		c.binDir = dir
	}

	failed := 0
	for i := 0; i < *sweep; i++ {
		run := c
		run.seed = c.seed + uint64(i)
		var err error
		switch {
		case run.standbys > 0:
			err = runStandbysOne(run, *keep)
		case run.tree > 0:
			err = runTreeOne(run, *keep)
		default:
			err = runOne(run, *keep)
		}
		if err != nil {
			failed++
			fmt.Printf("FAIL seed=%d: %v\n", run.seed, err)
			fmt.Printf("REPRODUCE: go run ./cmd/falkon-chaos -seed %d -tasks %d -execs %d -slots %d -kills %d -tree %d -tree-depth %d -standbys %d\n",
				run.seed, run.tasks, run.execs, run.slots, run.kills, run.tree, run.treeDepth, run.standbys)
		}
	}
	if failed > 0 {
		fmt.Printf("chaos: %d/%d seeds FAILED\n", failed, *sweep)
		os.Exit(1)
	}
	fmt.Printf("chaos: %d/%d seeds passed\n", *sweep, *sweep)
}

// runOne executes a full chaos run for one seed.
func runOne(c cfg, keep bool) (err error) {
	c.workDir, err = os.MkdirTemp("", fmt.Sprintf("falkon-chaos-%d-", c.seed))
	if err != nil {
		return err
	}
	defer func() {
		if err == nil && !keep {
			os.RemoveAll(c.workDir)
		} else {
			log.Printf("seed %d: work dir kept at %s", c.seed, c.workDir)
		}
	}()

	addr, err := freeAddr()
	if err != nil {
		return err
	}
	journal := filepath.Join(c.workDir, "journal")

	// The whole schedule derives from the seed. Print it up front: two runs
	// with the same seed print — and execute — the same schedule.
	dspec := dispatcherSpec(c.seed, 0)
	especs := make([]string, c.execs)
	for i := range especs {
		especs[i] = executorSpec(c.seed, i, 0).String()
	}
	killAts := killSchedule(c)
	log.Printf("seed %d schedule: dispatcher=%q executors=%q kills=%v", c.seed, dspec.String(), especs, killAts)

	// Dispatcher under supervision: restarted after injected kills and
	// journal fail-stops, always recovering from the same journal dir.
	disp := newSuper("dispatcher", c, func(restart int) *exec.Cmd {
		spec := dispatcherSpec(c.seed, restart)
		return exec.Command(filepath.Join(c.binDir, "falkon-dispatcher"),
			"-addr", addr,
			"-journal-dir", journal,
			"-journal-sync", "group",
			"-snapshot-every", "200",
			"-replay-timeout", "500ms",
			"-max-retries", "50",
			"-shards", fmt.Sprint(c.shards),
			"-stats-every", "0",
			"-faults", spec.String(),
		)
	})
	defer disp.stop()
	if err := waitListening(addr, 10*time.Second); err != nil {
		return fmt.Errorf("dispatcher never listened: %w", err)
	}

	// Executors under supervision: injected crashes (crash mid-task,
	// result-then-die) kill the process; the supervisor restarts it with a
	// fresh derived seed so a first-op crash can't loop forever.
	sups := make([]*super, c.execs)
	for i := 0; i < c.execs; i++ {
		i := i
		sups[i] = newSuper(fmt.Sprintf("executor-%d", i), c, func(restart int) *exec.Cmd {
			return exec.Command(filepath.Join(c.binDir, "falkon-executor"),
				"-dispatcher", addr,
				"-name", fmt.Sprintf("chaos-ex%d", i),
				"-slots", fmt.Sprint(c.slots),
				"-reconnect",
				"-reconnect-timeout", "60s",
				"-faults", executorSpec(c.seed, i, restart).String(),
			)
		})
		defer sups[i].stop()
	}

	// Scheduled dispatcher SIGKILLs — the disk-level crash story.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		start := time.Now()
		for _, at := range killAts {
			d := time.Until(start.Add(at))
			if d > 0 {
				select {
				case <-time.After(d):
				case <-disp.stopped:
					return
				}
			}
			log.Printf("seed %d: SIGKILL dispatcher (scheduled %v)", c.seed, at)
			disp.kill()
		}
	}()

	// The reconnecting client, in-process, with its own transport faults.
	// The registry collects falkon_fault_injected_total{fault=...} for the
	// final report.
	creg := obs.NewRegistry()
	cinj := faultinj.New(clientSpec(c.seed), creg, nil)
	var cl *client.Client
	for attempt := 0; ; attempt++ {
		cl, err = client.Connect(client.Options{
			DispatcherAddr:   addr,
			Name:             "falkon-chaos",
			BundleSize:       20,
			Reconnect:        true,
			ReconnectTimeout: 60 * time.Second,
			Faults:           cinj,
		})
		if err == nil {
			break
		}
		if attempt > 100 {
			return fmt.Errorf("client connect: %w", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	defer cl.Close()

	// Workload: sleep tasks with seed-derived durations.
	var gen task.IDGen
	ts := make([]task.Task, c.tasks)
	for i := range ts {
		ts[i] = task.Task{
			ID:       gen.Next(),
			Engine:   task.EngineSleep,
			Duration: time.Duration(faultinj.Uniform(c.seed, 99, uint64(i)) * float64(c.maxSleep)),
		}
	}
	if err := cl.Submit(ts); err != nil {
		return fmt.Errorf("submit: %w", err)
	}
	results, err := cl.WaitN(len(ts), c.waitFor)
	if err != nil {
		return fmt.Errorf("await results: %w", err)
	}
	<-killDone

	if err := verifyExactlyOnce(c.seed, ts, results); err != nil {
		return err
	}

	// Invariant 3: the system drained — nothing queued or outstanding once
	// every result is delivered (stale replays may lag briefly).
	if err := awaitDrained(cl, 15*time.Second); err != nil {
		return err
	}

	// Invariant 4: clean WAL recovery. Kill the dispatcher one last time;
	// the restarted process must replay the journal to an empty pending set
	// and still serve stats and metrics.
	log.Printf("seed %d: final SIGKILL + recovery check", c.seed)
	disp.kill()
	if err := awaitDrained(cl, 30*time.Second); err != nil {
		return fmt.Errorf("after final restart: %w", err)
	}
	ms, err := cl.Metrics()
	if err != nil {
		return fmt.Errorf("metrics after recovery: %w", err)
	}
	sub := ms.Counters["falkon_tasks_submitted_total"]
	comp := ms.Counters["falkon_tasks_completed_total"]
	if comp < int64(len(ts)) {
		return fmt.Errorf("metrics inconsistent: completed=%d < submitted workload %d (submitted counter %d)", comp, len(ts), sub)
	}

	log.Printf("seed %d PASS: %d results, client reconnects=%d resubmit-deduped=%d dup-results-dropped=%d, client faults: %s, dispatcher restarts=%d",
		c.seed, len(results), cl.Reconnects(), cl.Deduped(), cl.DuplicatesDropped(), cinj.Summary(), disp.restarts())
	// The final report names every fault counter the run observed — the
	// client injector's own registry plus whatever the (last incarnation of
	// the) dispatcher counted — in the exposition's own vocabulary, so a
	// chaos run's output is greppable against /metrics dashboards.
	printFaultCounters("client", creg.Snapshot().Counters)
	printFaultCounters("dispatcher", ms.Counters)
	return nil
}

// verifyExactlyOnce checks invariants 1 and 2 against a completed workload:
// N submitted tasks yield exactly N results with N distinct IDs, none lost,
// none delivered twice — and none failed, since sleep tasks cannot fail on
// their own, so any failure means the replay policy gave up on live work.
func verifyExactlyOnce(seed uint64, ts []task.Task, results []task.Result) error {
	if len(results) != len(ts) {
		return fmt.Errorf("submitted %d tasks, got %d results", len(ts), len(results))
	}
	got := make(map[task.ID]struct{}, len(results))
	failedResults := 0
	for _, r := range results {
		if _, dup := got[r.ID]; dup {
			return fmt.Errorf("task %v delivered twice", r.ID)
		}
		got[r.ID] = struct{}{}
		if r.Failed() {
			failedResults++
			log.Printf("seed %d: task %v failed: %s (exit %d)", seed, r.ID, r.Err, r.ExitCode)
		}
	}
	for _, t := range ts {
		if _, ok := got[t.ID]; !ok {
			return fmt.Errorf("task %v lost: no result", t.ID)
		}
	}
	if failedResults > 0 {
		return fmt.Errorf("%d tasks failed under injected faults", failedResults)
	}
	return nil
}

// printFaultCounters prints the falkon_fault_injected_total{fault=...}
// family from a metrics snapshot, sorted for stable output; silent when the
// run injected nothing on that side.
func printFaultCounters(side string, counters map[string]int64) {
	var keys []string
	for k := range counters {
		if strings.HasPrefix(k, "falkon_fault_injected_total{") && counters[k] > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		log.Printf("  %s %s %d", side, k, counters[k])
	}
}

// awaitDrained polls Stats until queue and outstanding are empty. The stats
// RPC itself rides the reconnecting client, so this also proves the
// dispatcher is up and serving.
func awaitDrained(cl *client.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		st, err := cl.Stats()
		if err == nil && st.Queued == 0 && st.Outstanding == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("stats unavailable: %w", err)
			}
			return fmt.Errorf("not drained: queued=%d outstanding=%d", st.Queued, st.Outstanding)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// dispatcherSpec derives the dispatcher's injector spec. Each restart gets
// a fresh derived seed — same master seed, same sequence of specs — so a
// fault that fires on the first operation cannot recur forever.
func dispatcherSpec(seed uint64, restart int) faultinj.Spec {
	return faultinj.Spec{
		Seed:       faultinj.DeriveSeed(seed, 1000+uint64(restart)),
		LatencyP:   0.01,
		Latency:    2 * time.Millisecond,
		DupNotifyP: 0.05,
		FsyncErrP:  0.002,
		TornWriteP: 0.001,
		ENOSPCP:    0.001,
		SlowDiskP:  0.01,
		SlowDisk:   2 * time.Millisecond,
	}
}

// executorSpec derives executor i's injector spec for its restart'th
// incarnation.
func executorSpec(seed uint64, i, restart int) faultinj.Spec {
	return faultinj.Spec{
		Seed:       faultinj.DeriveSeed(seed, 2000+100*uint64(i)+uint64(restart)),
		LatencyP:   0.02,
		Latency:    time.Millisecond,
		DropP:      0.002,
		MidFrameP:  0.001,
		CrashP:     0.01,
		StallP:     0.005,
		Stall:      time.Second, // > dispatcher replay timeout: provokes replays
		ResultDieP: 0.005,
	}
}

// clientSpec derives the in-process client's transport faults.
func clientSpec(seed uint64) faultinj.Spec {
	return faultinj.Spec{
		Seed:        faultinj.DeriveSeed(seed, 3000),
		LatencyP:    0.02,
		Latency:     time.Millisecond,
		DropP:       0.002,
		ShortWriteP: 0.001,
	}
}

// killSchedule derives when to SIGKILL the dispatcher: kills spread across
// the expected workload window, jittered deterministically by the seed.
func killSchedule(c cfg) []time.Duration {
	window := 10 * time.Second
	if c.tasks < 100 {
		window = 5 * time.Second
	}
	out := make([]time.Duration, c.kills)
	for i := range out {
		frac := (float64(i) + 0.3 + 0.6*faultinj.Uniform(c.seed, 50, uint64(i))) / float64(c.kills+1)
		out[i] = time.Duration(frac * float64(window))
	}
	return out
}

// super restarts a child process until stopped, appending its output to a
// log file in the work dir.
type super struct {
	name string
	mk   func(restart int) *exec.Cmd

	mu       sync.Mutex
	cmd      *exec.Cmd
	restart  int
	stopping bool
	stopped  chan struct{}
	logW     io.Writer
	logC     io.Closer
}

func newSuper(name string, c cfg, mk func(restart int) *exec.Cmd) *super {
	s := &super{name: name, mk: mk, stopped: make(chan struct{})}
	f, err := os.Create(filepath.Join(c.workDir, name+".log"))
	if err != nil {
		log.Fatalf("falkon-chaos: %v", err)
	}
	s.logC = f
	s.logW = f
	if c.verbose {
		s.logW = io.MultiWriter(f, os.Stderr)
	}
	go s.loop()
	return s
}

// loop starts the child and restarts it whenever it exits, until stop().
func (s *super) loop() {
	defer close(s.stopped)
	for {
		s.mu.Lock()
		if s.stopping {
			s.mu.Unlock()
			return
		}
		cmd := s.mk(s.restart)
		cmd.Stdout = s.logW
		cmd.Stderr = s.logW
		if err := cmd.Start(); err != nil {
			s.mu.Unlock()
			log.Printf("chaos: start %s: %v", s.name, err)
			return
		}
		s.cmd = cmd
		s.restart++
		s.mu.Unlock()
		cmd.Wait()
		s.mu.Lock()
		stopping := s.stopping
		s.mu.Unlock()
		if stopping {
			return
		}
		time.Sleep(200 * time.Millisecond) // restart backoff
	}
}

// kill SIGKILLs the current incarnation (the supervisor restarts it).
func (s *super) kill() {
	s.mu.Lock()
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

// stop terminates the child for good.
func (s *super) stop() {
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		<-s.stopped
		return
	}
	s.stopping = true
	cmd := s.cmd
	s.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Signal(syscall.SIGTERM)
		go func(c *exec.Cmd) {
			time.Sleep(3 * time.Second)
			if c.Process != nil {
				c.Process.Kill()
			}
		}(cmd)
	}
	<-s.stopped
	s.logC.Close()
}

// restarts reports how many times the child was (re)started.
func (s *super) restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restart - 1
}

// freeAddr reserves an ephemeral port and returns 127.0.0.1:port. The
// listener is closed before use; the small race is acceptable for a test
// harness, and the port stays stable across dispatcher restarts.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// waitListening dials until the dispatcher accepts or the timeout expires.
func waitListening(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, 250*time.Millisecond)
		if err == nil {
			c.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(50 * time.Millisecond)
	}
}
