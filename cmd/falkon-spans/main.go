// Command falkon-spans dumps recent task-lifecycle traces from a
// dispatcher's trace ring (falkon.events) as one-line span records: one line
// per task showing every recorded lifecycle event as an offset from the
// task's enqueue, plus the end-to-end latency. It is the command-line view
// of the paper's Figure 10 decomposition, per task instead of aggregated.
//
// Usage:
//
//	falkon-spans -dispatcher host:7523            # dump retained spans
//	falkon-spans -dispatcher host:7523 -follow    # tail new spans
//	falkon-spans -dispatcher host:7523 -raw       # one line per raw event
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"strings"
	"time"

	"falkon/internal/client"
	"falkon/internal/obs"
	"falkon/internal/task"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher address")
		max        = flag.Int("max", 0, "bound events fetched per request (0 = all retained)")
		follow     = flag.Bool("follow", false, "keep polling for new events")
		interval   = flag.Duration("interval", time.Second, "poll interval with -follow")
		raw        = flag.Bool("raw", false, "print raw events instead of assembled spans")
	)
	flag.Parse()

	c, err := client.Connect(client.Options{DispatcherAddr: *dispatcher, Name: "falkon-spans"})
	if err != nil {
		log.Fatalf("falkon-spans: %v", err)
	}
	defer c.Close()

	open := make(map[spanKey]*span)
	var since uint64
	for {
		er, err := c.Events(since, *max)
		if err != nil {
			log.Fatalf("falkon-spans: %v", err)
		}
		for _, ev := range er.Events {
			if *raw {
				fmt.Printf("seq=%d at=%s kind=%s task=%v epr=%s exec=%s\n",
					ev.Seq, ev.At, ev.Kind, ev.Task, ev.EPR, ev.Executor)
				continue
			}
			collect(open, ev)
		}
		if !*raw {
			flush(open)
		}
		if !*follow {
			return
		}
		// A dispatcher always advances NextSeq once it has recorded events;
		// a forwarder returns events with NextSeq=0 (per-dispatcher sequence
		// numbers make pagination impossible through the relay). Bail rather
		// than re-fetch — and re-print — the same window every interval.
		if er.NextSeq == 0 && len(er.Events) > 0 {
			log.Fatal("falkon-spans: endpoint does not support tailing (forwarder?)")
		}
		since = er.NextSeq
		time.Sleep(*interval)
	}
}

type spanKey struct {
	epr string
	id  task.ID
}

type span struct {
	events []obs.Event
	done   bool
}

// collect folds one event into its task's span. Delivery (or terminal
// failure) completes the span.
func collect(open map[spanKey]*span, ev obs.Event) {
	if ev.Task == 0 {
		return // executor-level event (e.g. a work-available notify)
	}
	k := spanKey{ev.EPR, ev.Task}
	s := open[k]
	if s == nil {
		s = &span{}
		open[k] = s
	}
	s.events = append(s.events, ev)
	if ev.Kind == obs.EvDelivered {
		s.done = true
	}
}

// flush prints and drops completed spans, oldest first.
func flush(open map[spanKey]*span) {
	var keys []spanKey
	for k, s := range open {
		if s.done {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return open[keys[i]].events[0].Seq < open[keys[j]].events[0].Seq
	})
	for _, k := range keys {
		fmt.Println(format(k, open[k]))
		delete(open, k)
	}
}

// format renders one span line: every event as an offset from the first.
func format(k spanKey, s *span) string {
	base := s.events[0].At
	exec := ""
	var b strings.Builder
	fmt.Fprintf(&b, "task=%v epr=%s", k.id, k.epr)
	for _, ev := range s.events {
		if ev.Executor != "" {
			exec = ev.Executor
		}
		fmt.Fprintf(&b, " %s=+%s", ev.Kind, (ev.At - base).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, " e2e=%s", (s.events[len(s.events)-1].At - base).Round(10*time.Microsecond))
	if exec != "" {
		fmt.Fprintf(&b, " exec=%s", exec)
	}
	return b.String()
}
