// Command falkon-spans dumps recent task-lifecycle traces from a
// dispatcher's trace ring (falkon.events) as one-line span records: one line
// per task showing every recorded lifecycle event as an offset from the
// task's enqueue, plus the end-to-end latency. It is the command-line view
// of the paper's Figure 10 decomposition, per task instead of aggregated.
//
// Usage:
//
//	falkon-spans -dispatcher host:7523            # dump retained spans
//	falkon-spans -dispatcher host:7523 -follow    # tail new spans
//	falkon-spans -dispatcher host:7523 -raw       # one line per raw event
//
// Merge mode joins multi-process span dumps (each daemon's /spans.jsonl)
// into one causally ordered, clock-corrected timeline per task, optionally
// emitting Chrome trace-event JSON for Perfetto / chrome://tracing:
//
//	falkon-spans -merge dispatcher.jsonl executor.jsonl
//	falkon-spans -merge -chrome trace.json dispatcher.jsonl executor.jsonl
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"falkon/internal/client"
	"falkon/internal/obs"
	"falkon/internal/task"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher address")
		max        = flag.Int("max", 0, "bound events fetched per request (0 = all retained)")
		follow     = flag.Bool("follow", false, "keep polling for new events")
		interval   = flag.Duration("interval", time.Second, "poll interval with -follow")
		raw        = flag.Bool("raw", false, "print raw events instead of assembled spans")
		merge      = flag.Bool("merge", false, "merge span dump files (args) into per-task cross-process timelines")
		chrome     = flag.String("chrome", "", "with -merge, also write Chrome trace-event JSON to this file")
	)
	flag.Parse()

	if *merge {
		if err := runMerge(flag.Args(), *chrome); err != nil {
			log.Fatalf("falkon-spans: %v", err)
		}
		return
	}

	c, err := client.Connect(client.Options{DispatcherAddr: *dispatcher, Name: "falkon-spans"})
	if err != nil {
		log.Fatalf("falkon-spans: %v", err)
	}
	defer c.Close()

	open := make(map[spanKey]*span)
	var since uint64
	for {
		er, err := c.Events(since, *max)
		if err != nil {
			log.Fatalf("falkon-spans: %v", err)
		}
		for _, ev := range er.Events {
			if *raw {
				fmt.Printf("seq=%d at=%s kind=%s task=%v epr=%s exec=%s\n",
					ev.Seq, ev.At, ev.Kind, ev.Task, ev.EPR, ev.Executor)
				continue
			}
			collect(open, ev)
		}
		if !*raw {
			flush(open)
		}
		if !*follow {
			return
		}
		// A dispatcher always advances NextSeq once it has recorded events;
		// a forwarder returns events with NextSeq=0 (per-dispatcher sequence
		// numbers make pagination impossible through the relay). Bail rather
		// than re-fetch — and re-print — the same window every interval.
		if er.NextSeq == 0 && len(er.Events) > 0 {
			log.Fatal("falkon-spans: endpoint does not support tailing (forwarder?)")
		}
		since = er.NextSeq
		time.Sleep(*interval)
	}
}

// runMerge parses each dump file, joins them on the corrected reference
// clock, and prints one timeline per task: every point attributed to the
// process that recorded it, offsets from the task's first point, and the
// e2e span the stage offsets partition exactly.
func runMerge(paths []string, chromeOut string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-merge needs at least one span dump file")
	}
	dumps := make([]obs.Dump, 0, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		d, err := obs.ParseDump(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		dumps = append(dumps, d)
		off := time.Duration(d.Header.ClockOffsetNS)
		fmt.Printf("# %s: %d events, epoch=%s, clock offset=%s (rtt=%s)\n",
			d.Header.Proc, len(d.Events),
			time.Unix(0, d.Header.EpochUnixNano).UTC().Format(time.RFC3339Nano),
			off, time.Duration(d.Header.ClockRTTNS))
	}
	tls := obs.MergeDumps(dumps)
	for _, tl := range tls {
		if len(tl.Points) == 0 {
			continue
		}
		base := tl.Points[0].AtNS
		var b strings.Builder
		fmt.Fprintf(&b, "trace=%#x task=%v epr=%s", tl.Trace, tl.Task, tl.EPR)
		for _, p := range tl.Points {
			fmt.Fprintf(&b, " %s[%s]=+%s", p.Kind, p.Proc, time.Duration(p.AtNS-base).Round(10*time.Microsecond))
		}
		fmt.Fprintf(&b, " e2e=%s", time.Duration(tl.E2E()).Round(10*time.Microsecond))
		fmt.Println(b.String())
	}
	if chromeOut != "" {
		f, err := os.Create(chromeOut)
		if err != nil {
			return err
		}
		if err := obs.WriteChromeTrace(f, tls); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("# wrote Chrome trace JSON for %d tasks to %s (open in Perfetto)\n", len(tls), chromeOut)
	}
	return nil
}

type spanKey struct {
	epr string
	id  task.ID
}

type span struct {
	events []obs.Event
	done   bool
}

// collect folds one event into its task's span. Delivery (or terminal
// failure) completes the span.
func collect(open map[spanKey]*span, ev obs.Event) {
	if ev.Task == 0 {
		return // executor-level event (e.g. a work-available notify)
	}
	k := spanKey{ev.EPR, ev.Task}
	s := open[k]
	if s == nil {
		s = &span{}
		open[k] = s
	}
	s.events = append(s.events, ev)
	if ev.Kind == obs.EvDelivered {
		s.done = true
	}
}

// flush prints and drops completed spans, oldest first.
func flush(open map[spanKey]*span) {
	var keys []spanKey
	for k, s := range open {
		if s.done {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		return open[keys[i]].events[0].Seq < open[keys[j]].events[0].Seq
	})
	for _, k := range keys {
		fmt.Println(format(k, open[k]))
		delete(open, k)
	}
}

// format renders one span line: every event as an offset from the first.
func format(k spanKey, s *span) string {
	base := s.events[0].At
	exec := ""
	var b strings.Builder
	fmt.Fprintf(&b, "task=%v epr=%s", k.id, k.epr)
	for _, ev := range s.events {
		if ev.Executor != "" {
			exec = ev.Executor
		}
		fmt.Fprintf(&b, " %s=+%s", ev.Kind, (ev.At - base).Round(10*time.Microsecond))
	}
	fmt.Fprintf(&b, " e2e=%s", (s.events[len(s.events)-1].At - base).Round(10*time.Microsecond))
	if exec != "" {
		fmt.Fprintf(&b, " exec=%s", exec)
	}
	return b.String()
}
