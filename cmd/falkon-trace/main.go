// Command falkon-trace generates, inspects, and replays grid workload
// traces (internal/trace): the batched, heavy-tailed submission structure
// the paper cites from real grid studies [36, 37].
//
// Usage:
//
//	falkon-trace -generate -jobs 2000 -span 1h -out grid.trace
//	falkon-trace -stats grid.trace
//	falkon-trace -replay grid.trace -executors 128
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"falkon/internal/lrm"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
	"falkon/internal/trace"
)

func main() {
	var (
		generate  = flag.Bool("generate", false, "generate a synthetic trace")
		jobs      = flag.Int("jobs", 2000, "job count for -generate")
		span      = flag.Duration("span", time.Hour, "submission window for -generate")
		batchMean = flag.Float64("batch-mean", 20, "mean batch size for -generate")
		median    = flag.Duration("runtime-median", 30*time.Second, "median runtime for -generate")
		seed      = flag.Int64("seed", 1, "generator seed")
		out       = flag.String("out", "", "output file for -generate (default stdout)")
		stats     = flag.String("stats", "", "print statistics for a trace file")
		replay    = flag.String("replay", "", "replay a trace file on the virtual-time models")
		executors = flag.Int("executors", 128, "executor/node count for -replay")
	)
	flag.Parse()

	switch {
	case *generate:
		tr := trace.Generate(trace.GenConfig{
			Jobs:          *jobs,
			Span:          *span,
			BatchMean:     *batchMean,
			RuntimeMedian: *median,
			RuntimeSigma:  1.2,
			Seed:          *seed,
		})
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				log.Fatalf("falkon-trace: %v", err)
			}
			defer f.Close()
			w = f
		}
		if err := tr.Write(w); err != nil {
			log.Fatalf("falkon-trace: %v", err)
		}
		if *out != "" {
			fmt.Printf("wrote %d jobs in %d batches to %s\n", len(tr.Jobs), tr.Batches(), *out)
		}
	case *stats != "":
		tr := load(*stats)
		st := tr.Summarize()
		fmt.Printf("trace %s: %d jobs, %d batches (mean %.1f, max %d per batch)\n",
			tr.Name, st.Jobs, st.Batches, st.MeanBatchSize, st.MaxBatchSize)
		fmt.Printf("submission span: %v\n", tr.Span())
		fmt.Printf("total runtime:   %v (mean %v/job)\n", tr.TotalRuntime(),
			(tr.TotalRuntime() / time.Duration(len(tr.Jobs))).Round(time.Millisecond))
		fmt.Printf("runtime quantiles (s): p50=%.1f p90=%.1f p99=%.1f max=%.1f\n",
			st.RuntimeP50, st.RuntimeP90, st.RuntimeP99, st.RuntimeMax)
	case *replay != "":
		tr := load(*replay)
		eF := sim.New(1)
		mF := simfalkon.New(eF, simfalkon.NoSecurity())
		falkon := trace.ReplayFalkon(eF, mF, tr, *executors)
		eL := sim.New(1)
		l := lrm.New(eL, lrm.PBS(), *executors)
		gw := lrm.NewGateway(eL, l, lrm.GRAM4())
		pbs := trace.ReplayLRM(eL, gw, tr)
		fmt.Printf("%-18s %12s %12s %12s\n", "system", "avg wait", "max wait", "makespan")
		fmt.Printf("%-18s %12v %12v %12v\n", "Falkon",
			falkon.AvgWait.Round(time.Millisecond), falkon.MaxWait.Round(time.Millisecond), falkon.Makespan.Round(time.Second))
		fmt.Printf("%-18s %12v %12v %12v\n", "GRAM4+PBS",
			pbs.AvgWait.Round(time.Millisecond), pbs.MaxWait.Round(time.Millisecond), pbs.Makespan.Round(time.Second))
	default:
		log.Fatal("falkon-trace: pass -generate, -stats <file>, or -replay <file>")
	}
}

// load reads a trace file or dies.
func load(path string) *trace.Trace {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("falkon-trace: %v", err)
	}
	defer f.Close()
	tr, err := trace.Read(path, f)
	if err != nil {
		log.Fatalf("falkon-trace: %v", err)
	}
	return tr
}
