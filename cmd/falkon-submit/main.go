// Command falkon-submit is the Falkon client CLI: it creates an instance on
// a dispatcher, submits a workload, waits for results, and reports
// throughput and latency statistics.
//
// Usage:
//
//	falkon-submit -dispatcher host:7523 -sleep0 1000 -bundle 50
//	falkon-submit -dispatcher host:7523 -exec "/bin/echo hi" -count 10
//	falkon-submit -dispatcher host:7523 -workload tasks.jsonl
//
// A workload file holds one JSON task per line (see internal/task.Task).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"falkon/internal/client"
	"falkon/internal/faultinj"
	"falkon/internal/metrics"
	"falkon/internal/obs"
	"falkon/internal/task"
	"falkon/internal/wsrpc"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher address")
		sleep0     = flag.Int("sleep0", 0, "submit this many sleep-0 tasks")
		sleepDur   = flag.Duration("sleep", 0, "duration for -sleep0 tasks")
		execCmd    = flag.String("exec", "", "submit a real command (space-separated argv)")
		count      = flag.Int("count", 1, "repetitions of -exec")
		workload   = flag.String("workload", "", "JSONL task file")
		bundle     = flag.Int("bundle", 1, "client-dispatcher bundle size")
		poll       = flag.Bool("poll", false, "poll for results instead of notifications")
		secure     = flag.Bool("secure", false, "use the secure-conversation transport profile")
		pskFile    = flag.String("psk-file", "", "pre-shared key file (required with -secure)")
		timeout    = flag.Duration("timeout", 10*time.Minute, "overall wait timeout")
		reconnect  = flag.Bool("reconnect", false, "survive dispatcher restarts: reattach, resubmit pending tasks idempotently, and dedupe redelivered results")
		debugAddr  = flag.String("debug-addr", "", "HTTP address serving /metrics and /debug/pprof/ while the run lasts (empty = off)")
		faults     = flag.String("faults", os.Getenv("FALKON_FAULTS"), "fault-injection spec, e.g. seed=42,latency=2ms@0.05 (chaos testing; default $FALKON_FAULTS)")
		tenant     = flag.String("tenant", "", "tenant to submit as (empty = the default tenant)")
	)
	flag.Parse()

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		obs.RegisterBuildInfo(reg, "submit")
		ds, err := obs.ServeDebug(*debugAddr, reg, nil)
		if err != nil {
			log.Fatalf("falkon-submit: debug server: %v", err)
		}
		defer ds.Close()
		log.Printf("falkon-submit debug endpoints on http://%s/metrics", ds.Addr())
	}

	opts := client.Options{
		DispatcherAddr: *dispatcher,
		Name:           "falkon-submit",
		BundleSize:     *bundle,
		Poll:           *poll,
		Reconnect:      *reconnect,
		Tenant:         *tenant,
	}
	if *faults != "" {
		spec, err := faultinj.Parse(*faults)
		if err != nil {
			log.Fatalf("falkon-submit: %v", err)
		}
		opts.Faults = faultinj.New(spec, nil, log.Printf)
		log.Printf("falkon-submit: fault injection armed: %s", spec)
	}
	if *secure {
		if *pskFile == "" {
			log.Fatal("falkon-submit: -secure requires -psk-file")
		}
		key, err := os.ReadFile(*pskFile)
		if err != nil {
			log.Fatalf("falkon-submit: read psk: %v", err)
		}
		opts.Security = wsrpc.SecuritySecureConversation
		opts.PSK = key
	}

	var gen task.IDGen
	var tasks []task.Task
	switch {
	case *sleep0 > 0:
		tasks = task.Batch(&gen, *sleep0, *sleepDur)
	case *execCmd != "":
		argv := strings.Fields(*execCmd)
		for i := 0; i < *count; i++ {
			tasks = append(tasks, task.Task{
				ID:      gen.Next(),
				Engine:  task.EngineExec,
				Command: argv[0],
				Args:    argv[1:],
			})
		}
	case *workload != "":
		var err error
		tasks, err = loadWorkload(*workload, &gen)
		if err != nil {
			log.Fatalf("falkon-submit: %v", err)
		}
	default:
		log.Fatal("falkon-submit: pass -sleep0, -exec, or -workload")
	}

	c, err := client.Connect(opts)
	if err != nil {
		log.Fatalf("falkon-submit: %v", err)
	}
	defer c.Close()

	start := time.Now()
	if err := c.Submit(tasks); err != nil {
		log.Fatalf("falkon-submit: %v", err)
	}
	results, err := c.WaitN(len(tasks), *timeout)
	if err != nil {
		log.Fatalf("falkon-submit: %v", err)
	}
	elapsed := time.Since(start)

	failed := 0
	var queue, exec []time.Duration
	for _, r := range results {
		if r.Failed() {
			failed++
		}
		queue = append(queue, r.QueueTime())
		exec = append(exec, r.ExecTime())
	}
	qs, es := metrics.DurationStats(queue), metrics.DurationStats(exec)
	fmt.Printf("completed %d tasks (%d failed) in %v: %.1f tasks/s\n",
		len(results), failed, elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	fmt.Printf("queue time  mean=%v min=%v max=%v\n", qs.Mean.Round(time.Microsecond), qs.Min.Round(time.Microsecond), qs.Max.Round(time.Microsecond))
	fmt.Printf("exec time   mean=%v min=%v max=%v\n", es.Mean.Round(time.Microsecond), es.Min.Round(time.Microsecond), es.Max.Round(time.Microsecond))
	if *reconnect && (c.Reconnects() > 0 || c.DuplicatesDropped() > 0 || c.Deduped() > 0) {
		fmt.Printf("recovery    reconnects=%d resubmit-deduped=%d duplicate-results-dropped=%d\n",
			c.Reconnects(), c.Deduped(), c.DuplicatesDropped())
	}
	if failed > 0 {
		os.Exit(1)
	}
}

// loadWorkload reads one JSON task per line, assigning ids when absent.
func loadWorkload(path string, gen *task.IDGen) ([]task.Task, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tasks, err := task.ReadJSONL(f, gen)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tasks, nil
}
