// Command falkon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	falkon-bench -experiment fig3            # one experiment
//	falkon-bench -experiment fig8 -scale 0.1 # scaled-down endurance run
//	falkon-bench -experiment live-throughput -json  # append a BENCH_live.json row
//	falkon-bench -all                        # everything
//	falkon-bench -list                       # available ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"time"

	"falkon/internal/bench"
)

// benchRow is one line of BENCH_live.json: a headline scalar per experiment
// run, stamped with when and at which commit it was measured, so the perf
// trajectory is tracked across PRs.
type benchRow struct {
	Experiment  string  `json:"experiment"`
	TasksPerSec float64 `json:"tasks_per_sec,omitempty"`
	NsPerOp     float64 `json:"ns_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// Per-stage scheduler overhead in ns/task (overhead-breakdown only),
	// keyed by stage name: lock_wait, sched_core, fx_flush, ...
	NsPerTask map[string]float64 `json:"ns_per_task,omitempty"`
	// Per-shard-count throughput (live-throughput only), keyed by shard
	// count: "1" is the legacy single-lock core, "4" the sharded core.
	TasksPerSecByShards map[string]float64 `json:"tasks_per_sec_by_shards,omitempty"`
	// Shards and Depth describe the measured topology: scheduler shard
	// count inside one dispatcher, and dispatch-tree depth (1 = flat
	// dispatcher, 2 = root + leaves).
	Shards int `json:"shards,omitempty"`
	Depth  int `json:"depth,omitempty"`
	// Per-depth throughput (tree-throughput only), keyed by tree depth:
	// "1" is the flat dispatcher, "2" the root+leaves tree.
	TasksPerSecByDepth map[string]float64 `json:"tasks_per_sec_by_depth,omitempty"`
	// Per-bundle-size throughput (bundle-sweep only), keyed by the client
	// bundle size — the paper's Figure 5 curve.
	TasksPerSecByBundle map[string]float64 `json:"tasks_per_sec_by_bundle,omitempty"`
	// Per-tenant p99 end-to-end latency in ms (hostile-tenant only), keyed
	// by tenant name, measured with fair-share on while the flood runs.
	P99ByTenant map[string]float64 `json:"p99_by_tenant,omitempty"`
	Scale       float64            `json:"scale"`
	Date        string             `json:"date"`
	Commit      string             `json:"commit,omitempty"`
}

func main() {
	var (
		experiment = flag.String("experiment", "", "comma-separated experiment ids (fig3, table2, ...)")
		scale      = flag.Float64("scale", 1.0, "experiment scale in (0, 1]: fractions shrink task counts")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		plot       = flag.Bool("plot", false, "render ASCII charts for figure experiments")
		jsonOut    = flag.Bool("json", false, "append machine-readable rows to -json-file for experiments with headline scalars")
		jsonFile   = flag.String("json-file", "BENCH_live.json", "destination for -json rows (one JSON object per line)")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.IDs()
	if !*all {
		if *experiment == "" {
			fmt.Fprintln(os.Stderr, "falkon-bench: pass -experiment <ids>, -all, or -list")
			os.Exit(2)
		}
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		res, err := bench.Run(strings.TrimSpace(id), *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "falkon-bench:", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plot {
			fmt.Print(res.RenderPlots())
		}
		if *jsonOut {
			p99ByTenant := prefixValues(res.Values, "p99_by_tenant_")
			if tput, ok := res.Values["tasks_per_sec"]; ok || len(p99ByTenant) > 0 {
				if err := appendRow(*jsonFile, benchRow{
					Experiment:          res.ID,
					TasksPerSec:         tput,
					NsPerOp:             res.Values["ns_per_op"],
					AllocsPerOp:         res.Values["allocs_per_op"],
					NsPerTask:           stageValues(res.Values),
					TasksPerSecByShards: shardValues(res.Values),
					Shards:              int(res.Values["shards"]),
					Depth:               int(res.Values["depth"]),
					TasksPerSecByDepth:  prefixValues(res.Values, "tasks_per_sec_depth_"),
					TasksPerSecByBundle: prefixValues(res.Values, "tasks_per_sec_bundle_"),
					P99ByTenant:         p99ByTenant,
					Scale:               *scale,
					Date:                time.Now().UTC().Format(time.RFC3339),
					Commit:              gitCommit(),
				}); err != nil {
					fmt.Fprintln(os.Stderr, "falkon-bench:", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "falkon-bench: appended %s row to %s\n", res.ID, *jsonFile)
			}
		}
	}
}

// appendRow appends one JSON object per line, so successive runs accumulate
// a trend file that is trivially diffable and parseable.
func appendRow(path string, row benchRow) error {
	b, err := json.Marshal(row)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	return err
}

// stageValues extracts per-stage "ns_per_task_<stage>" scalars into the
// structured map the JSON row carries (nil when the experiment has none).
// shardValues extracts tasks_per_sec_shards_<n> keys into a shard-count map.
func shardValues(values map[string]float64) map[string]float64 {
	return prefixValues(values, "tasks_per_sec_shards_")
}

// prefixValues collects "<prefix><key>" scalars into a map keyed by the
// suffix (nil when the experiment has none) — the depth/bundle/shard
// breakdowns of the JSON row.
func prefixValues(values map[string]float64, prefix string) map[string]float64 {
	var m map[string]float64
	for k, v := range values {
		if n, ok := strings.CutPrefix(k, prefix); ok {
			if m == nil {
				m = make(map[string]float64)
			}
			m[n] = v
		}
	}
	return m
}

func stageValues(values map[string]float64) map[string]float64 {
	var m map[string]float64
	for k, v := range values {
		if stage, ok := strings.CutPrefix(k, "ns_per_task_"); ok {
			if m == nil {
				m = make(map[string]float64)
			}
			m[stage] = v
		}
	}
	return m
}

// gitCommit best-effort resolves the current short commit hash ("" outside
// a git checkout).
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
