// Command falkon-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	falkon-bench -experiment fig3            # one experiment
//	falkon-bench -experiment fig8 -scale 0.1 # scaled-down endurance run
//	falkon-bench -all                        # everything
//	falkon-bench -list                       # available ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"falkon/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "comma-separated experiment ids (fig3, table2, ...)")
		scale      = flag.Float64("scale", 1.0, "experiment scale in (0, 1]: fractions shrink task counts")
		all        = flag.Bool("all", false, "run every experiment")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		plot       = flag.Bool("plot", false, "render ASCII charts for figure experiments")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := bench.IDs()
	if !*all {
		if *experiment == "" {
			fmt.Fprintln(os.Stderr, "falkon-bench: pass -experiment <ids>, -all, or -list")
			os.Exit(2)
		}
		ids = strings.Split(*experiment, ",")
	}
	for _, id := range ids {
		res, err := bench.Run(strings.TrimSpace(id), *scale)
		if err != nil {
			fmt.Fprintln(os.Stderr, "falkon-bench:", err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		if *plot {
			fmt.Print(res.RenderPlots())
		}
	}
}
