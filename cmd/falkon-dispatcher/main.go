// Command falkon-dispatcher runs a standalone Falkon dispatcher service.
//
// Usage:
//
//	falkon-dispatcher -addr :7523
//	falkon-dispatcher -addr :7523 -secure -psk-file key.txt
//
// Executors (cmd/falkon-executor) and clients (cmd/falkon-submit) connect
// to the printed address.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falkon/internal/dispatch"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/wal"
	"falkon/internal/wsrpc"
)

func main() {
	var (
		addr          = flag.String("addr", ":7523", "listen address")
		secure        = flag.Bool("secure", false, "require the secure-conversation transport profile")
		pskFile       = flag.String("psk-file", "", "pre-shared key file (required with -secure)")
		replayTimeout = flag.Duration("replay-timeout", 0, "re-dispatch tasks unacknowledged for this long (0 = disconnect-based only)")
		maxRetries    = flag.Int("max-retries", 3, "per-task re-dispatch bound")
		shards        = flag.Int("shards", 0, "scheduling shards (0 = one per CPU, 1 = legacy single-lock core)")
		statsEvery    = flag.Duration("stats-every", 10*time.Second, "periodic stats log interval (0 = off)")
		quiet         = flag.Bool("quiet", false, "suppress per-event logs")
		debugAddr     = flag.String("debug-addr", "", "HTTP address serving /metrics, /events.json, and /debug/pprof/ (empty = off)")
		journalDir    = flag.String("journal-dir", "", "write-ahead task journal directory; recovers state from it on start (empty = no journal)")
		journalSync   = flag.String("journal-sync", "group", "journal durability: group (fsync per commit batch), off, or a flush interval like 5ms")
		snapEvery     = flag.Int("snapshot-every", 0, "journal records between snapshot compactions (0 = default 65536, <0 = never)")
		faults        = flag.String("faults", os.Getenv("FALKON_FAULTS"), "fault-injection spec, e.g. seed=42,drop@0.01,fsyncerr@0.02 (chaos testing; default $FALKON_FAULTS)")
	)
	flag.Parse()

	syncPolicy, err := wal.ParseSyncPolicy(*journalSync)
	if err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	opts := dispatch.Options{
		ReplayTimeout: *replayTimeout,
		MaxRetries:    *maxRetries,
		Shards:        *shards,
		JournalDir:    *journalDir,
		JournalSync:   syncPolicy,
		SnapshotEvery: *snapEvery,
	}
	if *faults != "" {
		spec, err := faultinj.Parse(*faults)
		if err != nil {
			log.Fatalf("falkon-dispatcher: %v", err)
		}
		opts.Metrics = obs.NewRegistry()
		inj := faultinj.New(spec, opts.Metrics, log.Printf)
		opts.Faults = inj
		opts.JournalFS = inj.FS(wal.OS)
		// A journal that cannot write is fail-stop: crash and let the next
		// start recover the intact prefix rather than serve un-durable acks.
		opts.OnJournalError = func(err error) {
			log.Printf("falkon-dispatcher: journal failed, exiting for recovery: %v", err)
			os.Exit(3)
		}
		log.Printf("falkon-dispatcher: fault injection armed: %s", spec)
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	if *secure {
		if *pskFile == "" {
			log.Fatal("falkon-dispatcher: -secure requires -psk-file")
		}
		key, err := os.ReadFile(*pskFile)
		if err != nil {
			log.Fatalf("falkon-dispatcher: read psk: %v", err)
		}
		opts.Security = wsrpc.SecuritySecureConversation
		opts.PSK = key
	}

	d := dispatch.New(opts)
	obs.RegisterBuildInfo(d.Metrics(), "dispatcher")
	if err := d.Listen(*addr); err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	fmt.Printf("falkon-dispatcher listening on %s (security=%v)\n", d.Addr(), opts.Security)
	if *journalDir != "" {
		fmt.Printf("falkon-dispatcher journaling to %s (sync=%v)\n", *journalDir, syncPolicy)
	}

	if *debugAddr != "" {
		ds, err := obs.ServeDebugOpts(*debugAddr, obs.DebugOptions{
			Snap:       d.MetricsSnapshot,
			Tracer:     d.Tracer(),
			SpanHeader: d.SpanHeader,
		})
		if err != nil {
			log.Fatalf("falkon-dispatcher: debug server: %v", err)
		}
		defer ds.Close()
		fmt.Printf("falkon-dispatcher debug endpoints on http://%s/metrics\n", ds.Addr())
	}

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := d.Stats()
				log.Printf("stats: queued=%d outstanding=%d executors=%d (busy=%d) submitted=%d completed=%d failed=%d retried=%d",
					st.Queued, st.Outstanding, st.TotalExecutors, st.BusyExecutors,
					st.Submitted, st.Completed, st.Failed, st.Retried)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// A second signal skips the drain and exits hard (the journal makes
	// that safe: the next start replays it).
	go func() {
		<-sig
		log.Println("falkon-dispatcher: second signal, exiting immediately")
		os.Exit(1)
	}()
	log.Println("falkon-dispatcher: draining (up to 30s)")
	if !d.Drain(30 * time.Second) {
		log.Println("falkon-dispatcher: drain timed out; closing with work in flight")
	}
	// Close seals the journal (final flush + fsync) before exiting.
	d.Close()
	if *journalDir != "" {
		log.Println("falkon-dispatcher: journal sealed")
	}
	log.Println("falkon-dispatcher: shutdown complete")
}
