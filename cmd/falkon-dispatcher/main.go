// Command falkon-dispatcher runs a standalone Falkon dispatcher service.
//
// Usage:
//
//	falkon-dispatcher -addr :7523
//	falkon-dispatcher -addr :7523 -secure -psk-file key.txt
//
// Executors (cmd/falkon-executor) and clients (cmd/falkon-submit) connect
// to the printed address.
//
// High availability (see DESIGN.md §14) comes in three shapes:
//
//	falkon-dispatcher -addr :7523 -journal-dir wal/ -replicate quorum
//	    a leader that streams its journal to any standby that attaches
//	falkon-dispatcher -standby-of host:7523 -journal-dir mirror/
//	    a permanent standby mirroring that leader's journal
//	falkon-dispatcher -addr :7524 -journal-dir mirror2/ -lease-file /shared/lease
//	    an HA cluster member: follows the elected leader as a standby and
//	    promotes itself (replaying its mirror) when it wins the lease
//
// Multi-tenancy (DESIGN.md §15):
//
//	falkon-dispatcher -addr :7523 -tenants tenants.conf -fair-share
//	    per-tenant admission control (quotas, rate limits) from a config
//	    file, plus weighted fair-share scheduling across tenants
//	falkon-dispatcher -addr :7523 -tenant 'prod:weight=4' -tenant 'batch:rate=500' -fair-share
//	    the same, declared inline
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"falkon/internal/dispatch"
	"falkon/internal/faultinj"
	"falkon/internal/obs"
	"falkon/internal/replica"
	"falkon/internal/wal"
	"falkon/internal/wsrpc"
)

func main() {
	var (
		addr          = flag.String("addr", ":7523", "listen address")
		secure        = flag.Bool("secure", false, "require the secure-conversation transport profile")
		pskFile       = flag.String("psk-file", "", "pre-shared key file (required with -secure)")
		replayTimeout = flag.Duration("replay-timeout", 0, "re-dispatch tasks unacknowledged for this long (0 = disconnect-based only)")
		maxRetries    = flag.Int("max-retries", 3, "per-task re-dispatch bound")
		shards        = flag.Int("shards", 0, "scheduling shards (0 = one per CPU, 1 = legacy single-lock core)")
		statsEvery    = flag.Duration("stats-every", 10*time.Second, "periodic stats log interval (0 = off)")
		quiet         = flag.Bool("quiet", false, "suppress per-event logs")
		debugAddr     = flag.String("debug-addr", "", "HTTP address serving /metrics, /events.json, and /debug/pprof/ (empty = off)")
		journalDir    = flag.String("journal-dir", "", "write-ahead task journal directory; recovers state from it on start (empty = no journal)")
		journalSync   = flag.String("journal-sync", "group", "journal durability: group (fsync per commit batch), off, or a flush interval like 5ms")
		snapEvery     = flag.Int("snapshot-every", 0, "journal records between snapshot compactions (0 = default 65536, <0 = never)")
		faults        = flag.String("faults", os.Getenv("FALKON_FAULTS"), "fault-injection spec, e.g. seed=42,drop@0.01,fsyncerr@0.02 (chaos testing; default $FALKON_FAULTS)")
		tenantsFile   = flag.String("tenants", "", "tenant config file: one name:weight=4,quota=10000,rate=5000,burst=1000,maxq=50000 spec per line ('#' comments)")
		fairShare     = flag.Bool("fair-share", false, "weighted fair-share scheduling across tenants (SFQ)")

		replicate = flag.String("replicate", "", "accept standby replicas: async (acks don't wait) or quorum (client acks wait for standby acks); requires -journal-dir")
		minAcks   = flag.Int("replica-min-acks", 0, "quorum size for -replicate quorum (0 = every attached standby)")
		cluster   = flag.String("cluster", "", "HA cluster id stamped on instances so clients can reattach on any member (default: derived from -lease-file)")
		standbyOf = flag.String("standby-of", "", "run as a permanent standby mirroring this leader's journal into -journal-dir (no serving)")
		leaseFile = flag.String("lease-file", "", "HA election lease file shared by cluster members; follow the leader until this node wins it")
		leaseTTL  = flag.Duration("lease-ttl", 3*time.Second, "election lease duration (leader renews at TTL/3)")
		nodeID    = flag.String("node-id", "", "HA node identity in the lease file (default: -addr)")
	)
	var tenantFlags stringList
	flag.Var(&tenantFlags, "tenant", "one tenant spec, name or name:weight=4,quota=100,rate=50,burst=10,maxq=1000 (repeatable; merged with -tenants)")
	flag.Parse()

	tenants, err := loadTenants(*tenantsFile, tenantFlags)
	if err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}

	syncPolicy, err := wal.ParseSyncPolicy(*journalSync)
	if err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	opts := dispatch.Options{
		ReplayTimeout: *replayTimeout,
		MaxRetries:    *maxRetries,
		Shards:        *shards,
		Tenants:       tenants,
		FairShare:     *fairShare,
		JournalDir:    *journalDir,
		JournalSync:   syncPolicy,
		SnapshotEvery: *snapEvery,
		ClusterID:     *cluster,
	}
	if *faults != "" {
		spec, err := faultinj.Parse(*faults)
		if err != nil {
			log.Fatalf("falkon-dispatcher: %v", err)
		}
		opts.Metrics = obs.NewRegistry()
		inj := faultinj.New(spec, opts.Metrics, log.Printf)
		opts.Faults = inj
		opts.JournalFS = inj.FS(wal.OS)
		// A journal that cannot write is fail-stop: crash and let the next
		// start recover the intact prefix rather than serve un-durable acks.
		opts.OnJournalError = func(err error) {
			log.Printf("falkon-dispatcher: journal failed, exiting for recovery: %v", err)
			os.Exit(3)
		}
		log.Printf("falkon-dispatcher: fault injection armed: %s", spec)
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	if *secure {
		if *pskFile == "" {
			log.Fatal("falkon-dispatcher: -secure requires -psk-file")
		}
		key, err := os.ReadFile(*pskFile)
		if err != nil {
			log.Fatalf("falkon-dispatcher: read psk: %v", err)
		}
		opts.Security = wsrpc.SecuritySecureConversation
		opts.PSK = key
	}

	mode, err := replica.ParseMode(*replicate)
	if err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	if *replicate != "" || *leaseFile != "" {
		opts.Replication = &dispatch.ReplicationOptions{Mode: mode, MinAcks: *minAcks}
	}

	switch {
	case *standbyOf != "":
		runStandby(*standbyOf, *journalDir, *nodeID, syncPolicy, opts, *debugAddr, *statsEvery)
	case *leaseFile != "":
		runHANode(*leaseFile, *leaseTTL, *nodeID, *addr, *journalDir, syncPolicy, opts, *debugAddr, *statsEvery)
	default:
		runLeader(opts, *addr, *journalDir, syncPolicy, *debugAddr, *statsEvery)
	}
}

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return fmt.Sprint(*s) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// loadTenants merges the -tenants file with repeatable -tenant flags,
// rejecting a tenant declared in both places.
func loadTenants(path string, flags []string) ([]dispatch.TenantSpec, error) {
	var tenants []dispatch.TenantSpec
	if path != "" {
		fileSpecs, err := dispatch.LoadTenantsFile(path)
		if err != nil {
			return nil, err
		}
		tenants = fileSpecs
	}
	if len(flags) == 0 {
		return tenants, nil
	}
	flagSpecs, err := dispatch.ParseTenantSpecs(flags)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]struct{}, len(tenants))
	for _, t := range tenants {
		seen[t.Name] = struct{}{}
	}
	for _, t := range flagSpecs {
		if _, dup := seen[t.Name]; dup {
			return nil, fmt.Errorf("tenant %q declared in both -tenants file and -tenant flag", t.Name)
		}
		tenants = append(tenants, t)
	}
	return tenants, nil
}

// runLeader is the classic single-dispatcher path (optionally accepting
// standby replicas when -replicate is set).
func runLeader(opts dispatch.Options, addr, journalDir string, syncPolicy wal.SyncPolicy, debugAddr string, statsEvery time.Duration) {
	if opts.Replication != nil {
		opts.Replication.Term = 1
	}
	d := dispatch.New(opts)
	obs.RegisterBuildInfo(d.Metrics(), "dispatcher")
	if err := d.Listen(addr); err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	fmt.Printf("falkon-dispatcher listening on %s (security=%v)\n", d.Addr(), opts.Security)
	if journalDir != "" {
		fmt.Printf("falkon-dispatcher journaling to %s (sync=%v)\n", journalDir, syncPolicy)
	}
	if opts.Replication != nil {
		fmt.Printf("falkon-dispatcher replicating (%s) to attaching standbys\n", opts.Replication.Mode)
	}
	closeDebug := startDebug(debugAddr, d)
	defer closeDebug()
	startStatsLoop(statsEvery, d)
	awaitShutdown(d, journalDir)
}

// runStandby mirrors a fixed leader's journal forever: no serving, no
// election — a warm spare an operator promotes by restarting it as a
// leader over the mirror directory.
func runStandby(leaderAddr, dir, id string, syncPolicy wal.SyncPolicy, opts dispatch.Options, debugAddr string, statsEvery time.Duration) {
	if dir == "" {
		log.Fatal("falkon-dispatcher: -standby-of requires -journal-dir (the mirror directory)")
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "dispatcher")
	sb, err := replica.StartStandby(replica.StandbyOptions{
		ID:       id,
		Leader:   func() (string, error) { return leaderAddr, nil },
		Dir:      dir,
		Sync:     syncPolicy,
		Security: opts.Security,
		PSK:      opts.PSK,
		Metrics:  reg,
		Logf:     opts.Logf,
	})
	if err != nil {
		log.Fatalf("falkon-dispatcher: %v", err)
	}
	fmt.Printf("falkon-dispatcher standby of %s, mirroring to %s\n", leaderAddr, dir)
	if debugAddr != "" {
		ds, err := obs.ServeDebugOpts(debugAddr, obs.DebugOptions{Snap: reg.Snapshot})
		if err != nil {
			log.Fatalf("falkon-dispatcher: debug server: %v", err)
		}
		defer ds.Close()
		fmt.Printf("falkon-dispatcher debug endpoints on http://%s/metrics\n", ds.Addr())
	}
	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				st := sb.Stats()
				log.Printf("standby: term=%d mirrored=%d", st.Term, st.End)
			}
		}()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	sb.Stop()
	log.Println("falkon-dispatcher: standby stopped, mirror sealed")
}

// runHANode is one member of an elected cluster: standby while another
// node holds the lease, leader (over its replayed mirror) once it wins.
// A lost lease is fail-stop: exit 4 and let the supervisor restart the
// node as a standby.
func runHANode(leaseFile string, leaseTTL time.Duration, nodeID, addr, journalDir string, syncPolicy wal.SyncPolicy, opts dispatch.Options, debugAddr string, statsEvery time.Duration) {
	if journalDir == "" {
		log.Fatal("falkon-dispatcher: -lease-file requires -journal-dir (the node's journal/mirror directory)")
	}
	if nodeID == "" {
		nodeID = addr
	}
	if opts.ClusterID == "" {
		opts.ClusterID = "ha:" + leaseFile
	}
	reg := obs.NewRegistry()
	obs.RegisterBuildInfo(reg, "dispatcher")
	opts.Metrics = reg

	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		close(stop)
		<-sig
		log.Println("falkon-dispatcher: second signal, exiting immediately")
		os.Exit(1)
	}()

	var d *dispatch.Dispatcher
	err := replica.RunNode(replica.NodeOptions{
		ID:    nodeID,
		Addr:  addr,
		Lease: &replica.Lease{Path: leaseFile, TTL: leaseTTL},
		Standby: replica.StandbyOptions{
			ID:       nodeID,
			Dir:      journalDir,
			Sync:     syncPolicy,
			Security: opts.Security,
			PSK:      opts.PSK,
			Logf:     opts.Logf,
		},
		Promote: func(term uint64) error {
			opts.Replication.Term = term
			d = dispatch.New(opts)
			if err := d.Listen(addr); err != nil {
				return err
			}
			fmt.Printf("falkon-dispatcher leading on %s (term=%d cluster=%s)\n", d.Addr(), term, opts.ClusterID)
			startDebug(debugAddr, d)
			startStatsLoop(statsEvery, d)
			return nil
		},
		OnLostLease: func() {
			// Another leader may already be serving: stop taking writes
			// immediately; exit 4 tells the supervisor to restart us as a
			// standby.
			log.Println("falkon-dispatcher: lease lost, exiting (fail-stop)")
			os.Exit(4)
		},
		Metrics: reg,
		Logf:    log.Printf,
		Stop:    stop,
	})
	switch {
	case err == replica.ErrNodeStopped && d != nil:
		awaitShutdownNow(d, journalDir)
	case err == replica.ErrNodeStopped:
		log.Println("falkon-dispatcher: node stopped")
	case err != nil:
		log.Fatalf("falkon-dispatcher: %v", err)
	}
}

// startDebug serves /metrics, /events.json and pprof for a dispatcher.
func startDebug(debugAddr string, d *dispatch.Dispatcher) func() {
	if debugAddr == "" {
		return func() {}
	}
	ds, err := obs.ServeDebugOpts(debugAddr, obs.DebugOptions{
		Snap:       d.MetricsSnapshot,
		Tracer:     d.Tracer(),
		SpanHeader: d.SpanHeader,
	})
	if err != nil {
		log.Fatalf("falkon-dispatcher: debug server: %v", err)
	}
	fmt.Printf("falkon-dispatcher debug endpoints on http://%s/metrics\n", ds.Addr())
	return func() { ds.Close() }
}

// startStatsLoop logs a stats line every interval.
func startStatsLoop(every time.Duration, d *dispatch.Dispatcher) {
	if every <= 0 {
		return
	}
	go func() {
		for range time.Tick(every) {
			st := d.Stats()
			line := fmt.Sprintf("stats: queued=%d outstanding=%d executors=%d (busy=%d) submitted=%d completed=%d failed=%d retried=%d",
				st.Queued, st.Outstanding, st.TotalExecutors, st.BusyExecutors,
				st.Submitted, st.Completed, st.Failed, st.Retried)
			if st.Replication != nil {
				var worst int64
				for _, s := range st.Replication.Standbys {
					if s.Lag > worst {
						worst = s.Lag
					}
				}
				line += fmt.Sprintf(" repl(term=%d standbys=%d lag=%d)",
					st.Replication.Term, len(st.Replication.Standbys), worst)
			}
			if len(st.Tenants) > 0 {
				var throttled int64
				for _, tn := range st.Tenants {
					throttled += tn.Throttled
				}
				line += fmt.Sprintf(" tenants=%d throttled=%d", len(st.Tenants), throttled)
			}
			log.Print(line)
		}
	}()
}

// awaitShutdown blocks on SIGINT/SIGTERM, then drains and seals.
func awaitShutdown(d *dispatch.Dispatcher, journalDir string) {
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	// A second signal skips the drain and exits hard (the journal makes
	// that safe: the next start replays it).
	go func() {
		<-sig
		log.Println("falkon-dispatcher: second signal, exiting immediately")
		os.Exit(1)
	}()
	shutdown(d, journalDir)
}

// awaitShutdownNow drains and seals without waiting for a signal (the HA
// node path already consumed the signal to stop the election loop).
func awaitShutdownNow(d *dispatch.Dispatcher, journalDir string) {
	shutdown(d, journalDir)
}

func shutdown(d *dispatch.Dispatcher, journalDir string) {
	log.Println("falkon-dispatcher: draining (up to 30s)")
	if !d.Drain(30 * time.Second) {
		log.Println("falkon-dispatcher: drain timed out; closing with work in flight")
	}
	// Close seals the journal (final flush + fsync) before exiting.
	d.Close()
	if journalDir != "" {
		log.Println("falkon-dispatcher: journal sealed")
	}
	log.Println("falkon-dispatcher: shutdown complete")
}
