// Command falkon-top is a minimal operational dashboard: it polls a
// dispatcher's (or forwarder's) stats and prints a refreshing status line —
// queue depth, executor states, completion counters, throughput — plus a
// per-stage dispatch latency panel (the paper's Figure 10 breakdown) built
// from the falkon.metrics histograms. Pointed at a dispatch-tree root, it
// additionally shows one row per leaf: liveness, queue/outstanding depth,
// executor split, the root's routed-bundle counters, and bundles/s.
//
// Usage:
//
//	falkon-top -dispatcher host:7523
//	falkon-top -dispatcher host:7524 -interval 2s   # against a tree root
//	falkon-top -dispatcher host:7523 -stages=false  # status line only
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"falkon/internal/client"
	"falkon/internal/fproto"
	"falkon/internal/metrics"
	"falkon/internal/obs"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher or forwarder address")
		interval   = flag.Duration("interval", time.Second, "poll interval")
		once       = flag.Bool("once", false, "print one snapshot and exit")
		stages     = flag.Bool("stages", true, "show the per-stage latency panel")
		overhead   = flag.Bool("overhead", true, "show the scheduler-overhead panel (where the dispatcher's own time goes)")
		shards     = flag.Bool("shards", true, "show the shard-imbalance panel (hidden in single-shard mode)")
		leaves     = flag.Bool("leaves", true, "show the per-leaf panel when polling a dispatch-tree root")
		tenants    = flag.Bool("tenants", true, "show the per-tenant panel (hidden without tenant configuration)")
	)
	flag.Parse()

	c, err := client.Connect(client.Options{DispatcherAddr: *dispatcher, Name: "falkon-top"})
	if err != nil {
		log.Fatalf("falkon-top: %v", err)
	}
	defer c.Close()

	var lastCompleted int64
	lastSteals := map[int]int64{}
	lastBundles := map[string]int64{}
	lastThrottled := map[string]int64{}
	lastAt := time.Now()
	first := true
	lines := 0
	for {
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("falkon-top: %v", err)
		}
		now := time.Now()
		// No rate on the first sample: the counter delta would span the
		// dispatcher's whole uptime, not one poll interval.
		rate := 0.0
		elapsed := now.Sub(lastAt).Seconds()
		if !first {
			rate = float64(st.Completed-lastCompleted) / elapsed
		}
		first = false
		lastCompleted, lastAt = st.Completed, now

		// Rewind over the previous frame.
		if lines > 0 {
			fmt.Printf("\033[%dA", lines)
		}
		lines = 0
		// notify_errs appears only when nonzero: failed pushes are rare but
		// explain otherwise-mysterious replay timeouts, so they must surface.
		notifyErrs := ""
		if st.NotifyErrors > 0 {
			notifyErrs = fmt.Sprintf(" notify_errs=%d", st.NotifyErrors)
		}
		// A root announces its tree depth; a flat dispatcher stays silent.
		depth := ""
		if st.Depth > 1 {
			depth = fmt.Sprintf("depth=%d ", st.Depth)
		}
		fmt.Printf("\r\033[K%squeued=%-8d running=%-6d executors=%d(busy %d) dispatched=%d done=%d failed=%d retried=%d dup=%d%s rate=%.0f/s\n",
			depth, st.Queued, st.Outstanding, st.TotalExecutors, st.BusyExecutors,
			st.Dispatched, st.Completed, st.Failed, st.Retried, st.Duplicates, notifyErrs, rate)
		lines++
		// Per-leaf panel: present only when polling a dispatch-tree root.
		// Each row is one leaf dispatcher — its live capacity, the root's
		// routing counters toward it, and the bundle rate this interval.
		if *leaves && len(st.Leaves) > 0 {
			fmt.Printf("\033[K%-22s %4s %8s %12s %12s %8s %9s %10s %8s %7s\n",
				"leaf", "up", "queued", "outstanding", "execs(busy)", "pending", "bundles", "bundles/s", "reroute", "redial")
			lines++
			for _, lf := range st.Leaves {
				bundleRate := 0.0
				if prev, ok := lastBundles[lf.Leaf]; ok && elapsed > 0 {
					bundleRate = float64(lf.Bundles-prev) / elapsed
				}
				lastBundles[lf.Leaf] = lf.Bundles
				up := "no"
				if lf.Up {
					up = "yes"
				}
				fmt.Printf("\033[K%-22s %4s %8d %12d %9d(%d) %8d %9d %10.1f %8d %7d\n",
					lf.Leaf, up, lf.Queued, lf.Outstanding, lf.Executors, lf.Busy,
					lf.Pending, lf.Bundles, bundleRate, lf.Reroutes, lf.Reconnects)
				lines++
			}
		}
		// Tenant panel: present only with tenant configuration. Each row is
		// one tenant — fair-share weight, backlog, in-flight work, lifetime
		// counters, admission-control throttles, and the throttle rate this
		// interval.
		if *tenants && len(st.Tenants) > 0 {
			fmt.Printf("\033[K%-16s %7s %8s %9s %10s %10s %7s %10s %11s\n",
				"tenant", "weight", "queued", "inflight", "submitted", "completed", "failed", "throttled", "throttled/s")
			lines++
			for _, tn := range st.Tenants {
				throttleRate := 0.0
				if prev, ok := lastThrottled[tn.Name]; ok && elapsed > 0 {
					throttleRate = float64(tn.Throttled-prev) / elapsed
				}
				lastThrottled[tn.Name] = tn.Throttled
				fmt.Printf("\033[K%-16s %7.1f %8d %9d %10d %10d %7d %10d %11.1f\n",
					tn.Name, tn.Weight, tn.Queued, tn.InFlight, tn.Submitted,
					tn.Completed, tn.Failed, tn.Throttled, throttleRate)
				lines++
			}
		}
		// Shard-imbalance panel: per-shard queue depth, executor split, and
		// steal rate. Only worth screen space with more than one shard.
		if *shards && len(st.Shards) > 1 {
			fmt.Printf("\033[K%-8s %10s %12s %14s %10s %10s\n",
				"shard", "queued", "outstanding", "execs(busy)", "steals", "steals/s")
			lines++
			for _, sh := range st.Shards {
				stealRate := 0.0
				if prev, ok := lastSteals[sh.Shard]; ok && elapsed > 0 {
					stealRate = float64(sh.Steals-prev) / elapsed
				}
				lastSteals[sh.Shard] = sh.Steals
				fmt.Printf("\033[K%-8d %10d %12d %11d(%d) %10d %10.1f\n",
					sh.Shard, sh.Queued, sh.Outstanding, sh.Executors, sh.Busy, sh.Steals, stealRate)
				lines++
			}
		}
		// Replication panel appears only on HA members: the leader's term,
		// mode, and per-standby replication lag (records not yet durably
		// mirrored), or a standby's own position.
		if rs := st.Replication; rs != nil {
			fmt.Printf("\033[Kreplication role=%s term=%d mode=%s stream_end=%d standbys=%d degraded=%d\n",
				rs.Role, rs.Term, rs.Mode, rs.End, len(rs.Standbys), rs.QuorumDegraded)
			lines++
			for _, sb := range rs.Standbys {
				fmt.Printf("\033[K  standby %-20s acked=%-10d lag=%d\n", sb.ID, sb.Acked, sb.Lag)
				lines++
			}
		}
		// Journal panel appears only when the dispatcher journals.
		if st.Journal {
			recovered := ""
			if st.RecoveredTasks > 0 {
				recovered = fmt.Sprintf(" recovered=%d", st.RecoveredTasks)
			}
			fmt.Printf("\033[Kjournal appends=%d fsyncs=%d%s\n",
				st.JournalAppends, st.JournalFsyncs, recovered)
			lines++
		}

		if *stages || *overhead {
			ms, err := c.Metrics()
			if err != nil {
				log.Fatalf("falkon-top: metrics: %v", err)
			}
			if *stages {
				fmt.Printf("\033[K%-16s %10s %10s %10s %10s\n", "stage", "count", "p50", "p95", "p99")
				lines++
				for _, stage := range obs.Stages {
					lines += printHist(stage, ms.Histogram(obs.StageKey(stage)))
				}
				lines += printHist("end-to-end", ms.Histogram(obs.MetricE2ESeconds))
			}
			if *overhead {
				lines += printOverhead(ms)
			}
		}
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// printOverhead renders the scheduler-overhead panel: per-RPC hot-path
// stages (falkon_sched_overhead_seconds) plus the journal committer's batch
// write+fsync. It is omitted entirely when the endpoint reports no overhead
// samples (an older dispatcher, or nothing dispatched yet); it returns the
// lines printed.
func printOverhead(ms fproto.MetricsReply) int {
	rows := make([]metrics.HistSnapshot, len(obs.OverheadStages))
	any := false
	for i, stage := range obs.OverheadStages {
		rows[i] = ms.Histogram(obs.OverheadKey(stage))
		any = any || rows[i].Count > 0
	}
	commit := ms.Histogram(obs.MetricWALCommitSeconds)
	if !any && commit.Count == 0 {
		return 0
	}
	lines := 1
	fmt.Printf("\033[K%-16s %10s %10s %10s %10s\n", "overhead", "count", "mean", "p95", "p99")
	for i, stage := range obs.OverheadStages {
		fmt.Printf("\033[K%-16s %10d %10s %10s %10s\n",
			stage, rows[i].Count, fmtDur(rows[i].Mean()), fmtDur(rows[i].Quantile(0.95)), fmtDur(rows[i].Quantile(0.99)))
		lines++
	}
	if commit.Count > 0 {
		fmt.Printf("\033[K%-16s %10d %10s %10s %10s\n",
			"wal_commit", commit.Count, fmtDur(commit.Mean()), fmtDur(commit.Quantile(0.95)), fmtDur(commit.Quantile(0.99)))
		lines++
	}
	return lines
}

// printHist renders one latency row; it returns the lines printed.
func printHist(label string, h metrics.HistSnapshot) int {
	fmt.Printf("\033[K%-16s %10d %10s %10s %10s\n",
		label, h.Count, fmtDur(h.Quantile(0.5)), fmtDur(h.Quantile(0.95)), fmtDur(h.Quantile(0.99)))
	return 1
}

// fmtDur pretty-prints a latency in seconds with sub-ms resolution.
func fmtDur(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(10 * time.Microsecond).String()
}
