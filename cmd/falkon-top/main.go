// Command falkon-top is a minimal operational dashboard: it polls a
// dispatcher's (or forwarder's) stats and prints a refreshing status line —
// queue depth, executor states, completion counters, throughput.
//
// Usage:
//
//	falkon-top -dispatcher host:7523
//	falkon-top -dispatcher host:7524 -interval 2s   # against a forwarder
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"falkon/internal/client"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "127.0.0.1:7523", "dispatcher or forwarder address")
		interval   = flag.Duration("interval", time.Second, "poll interval")
		once       = flag.Bool("once", false, "print one snapshot and exit")
	)
	flag.Parse()

	c, err := client.Connect(client.Options{DispatcherAddr: *dispatcher, Name: "falkon-top"})
	if err != nil {
		log.Fatalf("falkon-top: %v", err)
	}
	defer c.Close()

	var lastCompleted int64
	lastAt := time.Now()
	for {
		st, err := c.Stats()
		if err != nil {
			log.Fatalf("falkon-top: %v", err)
		}
		now := time.Now()
		rate := float64(st.Completed-lastCompleted) / now.Sub(lastAt).Seconds()
		if lastCompleted == 0 {
			rate = 0
		}
		lastCompleted, lastAt = st.Completed, now
		fmt.Printf("\r\033[Kqueued=%-8d running=%-6d executors=%d(busy %d) done=%d failed=%d retried=%d rate=%.0f/s",
			st.Queued, st.Outstanding, st.TotalExecutors, st.BusyExecutors,
			st.Completed, st.Failed, st.Retried, rate)
		if *once {
			fmt.Println()
			return
		}
		time.Sleep(*interval)
	}
}
