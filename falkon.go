// Package falkon is a Go reproduction of "Falkon: a Fast and Light-weight
// tasK executiON framework" (Raicu et al., SC 2007): a multi-level
// scheduling system that separates resource acquisition (a provisioner
// allocating executors through batch-scheduler abstractions) from task
// dispatch (a streamlined dispatcher pushing work-available notifications
// and serving work pulls), achieving orders-of-magnitude higher task
// throughput than conventional batch schedulers for many-task workloads.
//
// This package is the public facade. A System starts an in-process
// deployment — dispatcher, executor pool (static or dynamically
// provisioned), and connected client — communicating over real TCP with the
// full Falkon protocol (bundling, piggy-backing, replay, notifications):
//
//	sys, err := falkon.Start(falkon.Config{Executors: 4, BundleSize: 32})
//	if err != nil { ... }
//	defer sys.Close()
//
//	var gen falkon.IDGen
//	if err := sys.Submit(falkon.SleepBatch(&gen, 1000, 0)); err != nil { ... }
//	results, err := sys.WaitN(1000, time.Minute)
//
// For distributed deployments, run cmd/falkon-dispatcher and
// cmd/falkon-executor and connect with NewClient. The virtual-time models
// that regenerate the paper's experiments live in internal/simfalkon and are
// driven by cmd/falkon-bench.
package falkon

import (
	"time"

	"falkon/internal/client"
	"falkon/internal/core"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/obs"
	"falkon/internal/provision"
	"falkon/internal/task"
	"falkon/internal/wsrpc"
)

// Task is one unit of work (command, args, synthetic engine, duration).
type Task = task.Task

// Result reports a finished task with full lifecycle timing.
type Result = task.Result

// ID identifies a task within a client instance.
type ID = task.ID

// IDGen hands out unique task ids.
type IDGen = task.IDGen

// IOSpec describes an EngineData task's staging volumes.
type IOSpec = task.IOSpec

// Engine selects how executors interpret a task.
type Engine = task.Engine

// Task engines.
const (
	EngineSleep = task.EngineSleep
	EngineData  = task.EngineData
	EngineExec  = task.EngineExec
	EngineFunc  = task.EngineFunc
)

// Config configures an in-process System.
type Config = core.Config

// ProvisioningConfig enables dynamic resource provisioning.
type ProvisioningConfig = core.ProvisioningConfig

// System is a running in-process Falkon deployment.
type System = core.System

// Func is an in-process task body registered on executors.
type Func = executor.Func

// Security profiles for the transport.
const (
	SecurityNone               = wsrpc.SecurityNone
	SecuritySecureConversation = wsrpc.SecuritySecureConversation
)

// Release policies (paper §3.1).
const (
	ReleaseDistributed = provision.ReleaseDistributed
	ReleaseCentralized = provision.ReleaseCentralized
	ReleaseNever       = provision.ReleaseNever
)

// Dispatch policies: the paper's next-available FIFO, and the data-aware
// extension it proposes in §6 (dataset-affinity with executor caching).
const (
	PolicyNextAvailable = dispatch.PolicyNextAvailable
	PolicyDataAware     = dispatch.PolicyDataAware
)

// Start boots an in-process Falkon system.
func Start(cfg Config) (*System, error) { return core.Start(cfg) }

// Sleep builds a synthetic task running for d.
func Sleep(id ID, d time.Duration) Task { return task.Sleep(id, d) }

// SleepBatch builds n sleep tasks of duration d.
func SleepBatch(gen *IDGen, n int, d time.Duration) []Task { return task.Batch(gen, n, d) }

// AllAtOnce returns the single-request acquisition policy used throughout
// the paper's evaluation.
func AllAtOnce() provision.AcquisitionPolicy { return provision.AllAtOnce() }

// OneAtATime returns the n-single-requests acquisition policy.
func OneAtATime() provision.AcquisitionPolicy { return provision.OneAtATime() }

// Additive returns the arithmetically-increasing acquisition policy.
func Additive(step int) provision.AcquisitionPolicy { return provision.Additive(step) }

// Exponential returns the exponentially-increasing acquisition policy.
func Exponential() provision.AcquisitionPolicy { return provision.Exponential() }

// MetricsSnapshot is a point-in-time view of a component's instrument
// registry: counters, gauges, and mergeable latency histograms. Snapshots
// from several components merge (counters sum, histograms combine), which is
// how a forwarder aggregates its dispatchers.
type MetricsSnapshot = obs.MetricsSnapshot

// TraceEvent is one task-lifecycle trace record (enqueued, notified, pulled,
// started, finished, delivered, ...) on the dispatcher timeline.
type TraceEvent = obs.Event

// ServeDebug starts an HTTP server exposing a registry as a Prometheus-style
// /metrics endpoint, recent trace events at /events.json, and net/http/pprof
// under /debug/pprof/. Either argument may be nil.
func ServeDebug(addr string, reg *obs.Registry, tr *obs.Tracer) (*obs.DebugServer, error) {
	return obs.ServeDebug(addr, reg, tr)
}

// ClientOptions configures NewClient for connecting to a remote dispatcher.
type ClientOptions = client.Options

// Client is a connection to a (possibly remote) dispatcher.
type Client = client.Client

// NewClient connects to a dispatcher started elsewhere (e.g.
// cmd/falkon-dispatcher).
func NewClient(opts ClientOptions) (*Client, error) { return client.Connect(opts) }
