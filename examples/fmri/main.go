// fMRI: run the paper's §5.1 AIRSN medical-imaging pipeline as a real task
// graph (reorient -> realign -> reslice -> smooth per volume) through the
// workflow engine on a live in-process Falkon system, and compare against
// the virtual-time GRAM4+PBS and clustered baselines — a miniature of
// Figure 14.
//
// Synthetic task durations are compressed 100x (SleepScale 0.01) so the
// live run finishes in seconds.
package main

import (
	"fmt"
	"log"
	"time"

	"falkon"
	"falkon/internal/lrm"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
	"falkon/internal/workflow"
	"falkon/internal/workloads"
)

const volumes = 60

func main() {
	g := workflow.FMRIGraph(volumes)
	fmt.Printf("fMRI AIRSN pipeline: %d volumes -> %d tasks in %d stages\n",
		volumes, g.Len(), len(g.StageNames()))

	// Live run on Falkon with 8 executors (the paper used a fixed set of
	// eight).
	sys, err := falkon.Start(falkon.Config{
		Executors:  8,
		BundleSize: 32,
		SleepScale: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	liveDone := make(chan workflow.Report, 1)
	lp := &workflow.LiveProvider{System: sys}
	start := time.Now()
	if err := workflow.Run(g, lp, func(r workflow.Report) { liveDone <- r }); err != nil {
		log.Fatal(err)
	}
	rep := <-liveDone
	fmt.Printf("\nlive Falkon run: %d tasks in %v wall (logical durations compressed 100x)\n",
		rep.Nodes, time.Since(start).Round(time.Millisecond))
	for _, s := range g.StageNames() {
		fmt.Printf("  stage %-9s finished at %8v, %v CPU\n", s, rep.StageEnd[s].Round(time.Millisecond), rep.StageBusy[s])
	}

	// Baselines in virtual time at full logical scale, submitted stage-wise
	// the way Swift drove GRAM4 (per-stage waves, optionally clustered).
	gram := baseline(false)
	clustered := baseline(true)
	fmt.Printf("\nbaselines (virtual time, full logical durations):\n")
	fmt.Printf("  GRAM4+PBS (one job per task):   %8.0f s\n", gram.Seconds())
	fmt.Printf("  GRAM4+PBS clustered (8 groups): %8.0f s\n", clustered.Seconds())
	fmt.Printf("Figure 14's ordering — GRAM4+PBS >> clustered > Falkon — holds; the paper reports\n")
	fmt.Printf("up to 90%% end-to-end reduction for Falkon vs direct batch submission.\n")
}

// baseline replays the staged workload against the simulated batch
// scheduler.
func baseline(clustered bool) time.Duration {
	e := sim.New(1)
	l := lrm.New(e, lrm.PBS(), 62)
	gw := lrm.NewGateway(e, l, lrm.GRAM4())
	w := workloads.FMRI(volumes)
	var set *simfalkon.GramOutcomeSet
	if clustered {
		simfalkon.RunStagedClustered(gw, w, 8, func(s *simfalkon.GramOutcomeSet) { set = s })
	} else {
		simfalkon.RunStagedGram(gw, w, func(s *simfalkon.GramOutcomeSet) { set = s })
	}
	e.Run()
	return set.DoneAt
}
