// Provisioning: run the paper's 18-stage synthetic workload (§4.6) under
// dynamic resource provisioning at several idle-release settings, printing
// the Table 3/4 trade-off — higher utilization (short idle timeouts) costs
// longer completion times.
//
// Everything runs on the virtual clock: the full 1,000-task workload with a
// simulated PBS cluster behind a GRAM4 gateway replays in milliseconds.
package main

import (
	"fmt"
	"time"

	"falkon/internal/lrm"
	"falkon/internal/provision"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
	"falkon/internal/workloads"
)

func main() {
	w := workloads.Synthetic18()
	fmt.Printf("18-stage synthetic workload: %d tasks, %.0f CPU s, ideal %.0f s on 32 machines\n\n",
		w.TotalTasks(), w.TotalCPU().Seconds(), w.IdealMakespan(32).Seconds())

	fmt.Printf("%-12s  %10s  %12s  %12s  %12s\n", "strategy", "time (s)", "utilization", "efficiency", "allocations")
	for _, cfg := range []struct {
		name string
		idle time.Duration
	}{
		{"Falkon-15", 15 * time.Second},
		{"Falkon-60", 60 * time.Second},
		{"Falkon-120", 120 * time.Second},
		{"Falkon-180", 180 * time.Second},
		{"Falkon-inf", 0},
	} {
		makespan, util, allocs := run(w, cfg.idle)
		fmt.Printf("%-12s  %10.0f  %11.0f%%  %11.0f%%  %12d\n",
			cfg.name, makespan.Seconds(), 100*util,
			100*w.IdealMakespan(32).Seconds()/makespan.Seconds(), allocs)
	}
	fmt.Println("\npaper (Table 4): Falkon-15 1754s/89%, Falkon-60 1680s/75%, Falkon-120 1507s/65%,")
	fmt.Println("                 Falkon-180 1484s/59%, Falkon-inf 1276s/44% — the same trade-off.")
}

// run executes the workload with one idle-release setting; idle == 0 means
// a statically pre-provisioned 32-machine pool (Falkon-∞).
func run(w workloads.Workload, idle time.Duration) (time.Duration, float64, int) {
	e := sim.New(7)
	m := simfalkon.New(e, simfalkon.NoSecurity())
	var prov *simfalkon.Provisioner
	if idle == 0 {
		for i := 0; i < 32; i++ {
			m.AddExecutor(0, nil)
		}
	} else {
		l := lrm.New(e, lrm.PBS(), 100)
		gw := lrm.NewGateway(e, l, lrm.GRAM4())
		prov = simfalkon.NewProvisioner(m, gw, simfalkon.ProvisionerConfig{
			Max:         32,
			IdleTimeout: idle,
			Policy:      provision.AllAtOnce(),
		})
	}
	done := false
	var makespan time.Duration
	simfalkon.RunStaged(m, w, 32, func() { done = true; makespan = e.Now() })
	if prov != nil {
		prov.StartPolling(func() bool { return done })
	}
	e.Run()

	var wasted time.Duration
	for _, x := range m.Executors() {
		wasted += x.Lifetime(makespan) - x.BusyFor()
	}
	used := w.TotalCPU()
	util := used.Seconds() / (used + wasted).Seconds()
	allocs := 0
	if prov != nil {
		allocs = prov.Requests()
	}
	return makespan, util, allocs
}
