// Montage: execute the §5.2 astronomy mosaic DAG (3°x3° around M16: 487
// reprojections, 2,200 difference/fit pairs, background correction, split
// co-add) on the virtual-time Falkon model and print per-stage times
// against the MPI model — Figure 15's comparison.
//
// The full graph is 3,296 nodes; the data-driven engine overlaps stages
// where dependencies allow, exactly as Swift over Falkon did.
package main

import (
	"fmt"
	"log"
	"time"

	"falkon/internal/lrm"
	"falkon/internal/sim"
	"falkon/internal/simfalkon"
	"falkon/internal/workflow"
	"falkon/internal/workloads"
)

const procs = 32

func main() {
	g := workflow.MontageGraph()
	cp, err := g.CriticalPath()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Montage M16 3x3deg: %d tasks, critical path %v\n\n", g.Len(), cp)

	falkonRep := runFalkon(g)
	gramRep := runClusteredGram(g)

	fmt.Printf("%-12s  %12s  %12s  %12s\n", "stage", "GRAM4+PBS(c)", "Falkon", "MPI model")
	var prevF, prevG time.Duration
	var falkonExAdd, mpiExAdd time.Duration
	w := workloads.Montage()
	for i, name := range workloads.MontageStageNames {
		fEnd, gEnd := falkonRep.StageEnd[name], gramRep.StageEnd[name]
		fDur, gDur := fEnd-prevF, gEnd-prevG
		prevF, prevG = fEnd, gEnd
		single := workloads.Workload{Stages: []workloads.Stage{w.Stages[i]}}
		mpi := single.IdealMakespan(procs) + 35*time.Second
		fmt.Printf("%-12s  %11.0fs  %11.0fs  %11.0fs\n", name, gDur.Seconds(), fDur.Seconds(), mpi.Seconds())
		if name != "mAdd" {
			falkonExAdd += fDur
			mpiExAdd += mpi
		}
	}
	fmt.Printf("\nexcluding the final co-add: Falkon %.0f s vs MPI %.0f s\n", falkonExAdd.Seconds(), mpiExAdd.Seconds())
	fmt.Println("(paper: Swift+Falkon 1,067 s vs MPI 1,120 s — Falkon ~5% faster; the final")
	fmt.Println(" mAdd is parallelized only in the MPI version, so Falkon loses that stage)")
}

// runFalkon executes the DAG on the Falkon model with 32 executors.
func runFalkon(g *workflow.Graph) workflow.Report {
	e := sim.New(1)
	m := simfalkon.New(e, simfalkon.NoSecurity())
	for i := 0; i < procs; i++ {
		m.AddExecutor(0, nil)
	}
	var rep workflow.Report
	if err := workflow.Run(g, &workflow.FalkonProvider{Model: m, Bundle: 32}, func(r workflow.Report) { rep = r }); err != nil {
		log.Fatal(err)
	}
	e.Run()
	return rep
}

// runClusteredGram executes the DAG through GRAM4+PBS with clustering.
func runClusteredGram(g *workflow.Graph) workflow.Report {
	e := sim.New(1)
	l := lrm.New(e, lrm.PBS(), procs)
	gw := lrm.NewGateway(e, l, lrm.GRAM4())
	var rep workflow.Report
	if err := workflow.Run(g, &workflow.ClusteredGramProvider{Gateway: gw, Clusters: procs}, func(r workflow.Report) { rep = r }); err != nil {
		log.Fatal(err)
	}
	e.Run()
	return rep
}
