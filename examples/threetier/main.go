// Threetier: the paper's §6 Figure 16 architecture, live in one process —
// two dispatchers each managing their own executors (as they would on
// cluster manager nodes straddling public/private networks), a forwarder in
// front, and the unmodified client library talking to the forwarder.
package main

import (
	"fmt"
	"log"
	"time"

	"falkon"
	"falkon/internal/dispatch"
	"falkon/internal/executor"
	"falkon/internal/forward"
)

func main() {
	// Tier 3: two dispatchers, each with its own executor pool.
	var dispAddrs []string
	for i := 0; i < 2; i++ {
		d := dispatch.New(dispatch.Options{})
		if err := d.Listen("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer d.Close()
		for j := 0; j < 4; j++ {
			ex, err := executor.Start(executor.Options{
				ID:             fmt.Sprintf("site%d-exec%d", i, j),
				DispatcherAddr: d.Addr(),
			})
			if err != nil {
				log.Fatal(err)
			}
			defer ex.Stop()
		}
		dispAddrs = append(dispAddrs, d.Addr())
		fmt.Printf("site %d: dispatcher %s with 4 executors\n", i, d.Addr())
	}

	// Tier 2: the forwarder in "public IP space".
	fwd, err := forward.New(forward.Options{Dispatchers: dispAddrs})
	if err != nil {
		log.Fatal(err)
	}
	if err := fwd.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	defer fwd.Close()
	fmt.Printf("forwarder: %s relaying to %d sites\n\n", fwd.Addr(), len(dispAddrs))

	// Tier 1: four ordinary clients; their instances spread round-robin
	// across the sites.
	const perClient = 500
	start := time.Now()
	results := make(chan int, 4)
	for c := 0; c < 4; c++ {
		c := c
		go func() {
			cli, err := falkon.NewClient(falkon.ClientOptions{
				DispatcherAddr: fwd.Addr(),
				Name:           fmt.Sprintf("client-%d", c),
				BundleSize:     50,
			})
			if err != nil {
				log.Fatal(err)
			}
			defer cli.Close()
			var gen falkon.IDGen
			if err := cli.Submit(falkon.SleepBatch(&gen, perClient, 0)); err != nil {
				log.Fatal(err)
			}
			rs, err := cli.WaitN(perClient, time.Minute)
			if err != nil {
				log.Fatal(err)
			}
			results <- len(rs)
		}()
	}
	total := 0
	for c := 0; c < 4; c++ {
		total += <-results
	}
	elapsed := time.Since(start)
	fmt.Printf("4 clients completed %d tasks through the forwarder in %v (%.0f tasks/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Println("(paper §6: the 3-tier architecture supports cross-firewall communication and")
	fmt.Println(" executors in private IP space, and is the route to BlueGene/P-scale machines)")
}
