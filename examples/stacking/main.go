// Stacking: the AstroPortal sky-survey stacking service — the challenge
// problem that inspired Falkon (paper acknowledgments) — on a live system
// with the §6 data-aware extension. Many small tasks each read one image
// from a modest set; with next-available dispatch every read re-stages from
// the shared file system, while data-aware dispatch routes repeat reads to
// the executor already caching the image.
package main

import (
	"fmt"
	"log"
	"time"

	"falkon"
	"falkon/internal/data"
)

const (
	nExecutors = 8
	nImages    = 64
	nReads     = 6 // stack operations per image
	scale      = 0.02
)

func main() {
	fmt.Printf("stacking service: %d reads over %d images on %d executors\n",
		nImages*nReads, nImages, nExecutors)
	naive, _ := runPolicy(falkon.Config{Policy: falkon.PolicyNextAvailable})
	aware, hits := runPolicy(falkon.Config{Policy: falkon.PolicyDataAware, CacheCapacity: 2 * nImages / nExecutors})
	fmt.Printf("\n%-28s %v\n", "next-available (paper §3.1):", naive.Round(time.Millisecond))
	fmt.Printf("%-28s %v  (%.0f%% cache hits)\n", "data-aware (paper §6):", aware.Round(time.Millisecond), hits*100)
	fmt.Printf("speedup: %.1fx — the benefit the paper predicts for 'applications that\n", float64(naive)/float64(aware))
	fmt.Println("exhibit locality in their data access patterns' (§6)")
}

func runPolicy(cfg falkon.Config) (time.Duration, float64) {
	throttle := data.NewThrottle(scale) // real shared-bandwidth contention
	cfg.Executors = nExecutors
	cfg.BundleSize = 32
	cfg.DataCost = throttle.Cost
	sys, err := falkon.Start(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	var gen falkon.IDGen
	var tasks []falkon.Task
	for r := 0; r < nReads; r++ {
		for i := 0; i < nImages; i++ {
			tasks = append(tasks, falkon.Task{
				ID:     gen.Next(),
				Engine: falkon.EngineData,
				IO: &falkon.IOSpec{
					ReadBytes: 8 << 20, // one 8 MB image cutout
					Location:  "shared",
					Dataset:   fmt.Sprintf("img-%03d", i),
				},
			})
		}
	}
	start := time.Now()
	if err := sys.Submit(tasks); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.WaitN(len(tasks), 5*time.Minute); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	st := sys.Stats()
	hitRate := 0.0
	if tot := st.CacheHits + st.CacheMisses; tot > 0 {
		hitRate = float64(st.CacheHits) / float64(tot)
	}
	return elapsed, hitRate
}
