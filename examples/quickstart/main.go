// Quickstart: boot an in-process Falkon system (dispatcher + executors +
// client over real loopback TCP), submit a bundle of sleep-0 tasks — the
// paper's microbenchmark staple — and print throughput, mirroring the §4.1
// methodology at laptop scale.
package main

import (
	"fmt"
	"log"
	"time"

	"falkon"
)

func main() {
	sys, err := falkon.Start(falkon.Config{
		Executors:  8,   // the paper runs one executor per processor
		BundleSize: 50,  // client-dispatcher bundling (§3.4)
		SleepScale: 1.0, // sleep-0 tasks need no compression
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	const n = 5000
	var gen falkon.IDGen
	tasks := falkon.SleepBatch(&gen, n, 0)

	start := time.Now()
	if err := sys.Submit(tasks); err != nil {
		log.Fatal(err)
	}
	results, err := sys.WaitN(n, time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	failed := 0
	var maxQueue time.Duration
	for _, r := range results {
		if r.Failed() {
			failed++
		}
		if q := r.QueueTime(); q > maxQueue {
			maxQueue = q
		}
	}
	st := sys.Stats()
	fmt.Printf("ran %d sleep-0 tasks on %d executors in %v\n", n, st.TotalExecutors, elapsed.Round(time.Millisecond))
	fmt.Printf("throughput: %.0f tasks/s (the paper's GT4-based dispatcher peaked at 487)\n", float64(n)/elapsed.Seconds())
	fmt.Printf("failures: %d, max queue time: %v\n", failed, maxQueue.Round(time.Millisecond))
}
